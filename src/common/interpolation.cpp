#include "common/interpolation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hemp {
namespace {

double lerp_segment(double x, std::pair<double, double> a, std::pair<double, double> b) {
  const double t = (x - a.first) / (b.first - a.first);
  return a.second + t * (b.second - a.second);
}

// Index of the segment [axis[i], axis[i+1]] containing x, clamped to the
// first/last segment for out-of-range queries.
std::size_t segment_index(const std::vector<double>& axis, double x) {
  if (x <= axis.front()) return 0;
  if (x >= axis.back()) return axis.size() - 2;
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  return static_cast<std::size_t>(it - axis.begin()) - 1;
}

}  // namespace

namespace {

// 1 / spacing when `axis` is uniformly spaced (to ~1e-9 relative), else 0.
double uniform_inv_pitch(const std::vector<double>& axis) {
  const double pitch = (axis.back() - axis.front()) /
                       static_cast<double>(axis.size() - 1);
  for (std::size_t i = 1; i < axis.size(); ++i) {
    if (std::fabs(axis[i] - axis[i - 1] - pitch) > 1e-9 * std::fabs(pitch)) {
      return 0.0;
    }
  }
  return 1.0 / pitch;
}

}  // namespace

BilinearGrid::BilinearGrid(std::vector<double> xs, std::vector<double> ys,
                           std::vector<double> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), values_(std::move(values)) {
  HEMP_REQUIRE(xs_.size() >= 2 && ys_.size() >= 2,
               "BilinearGrid: need at least 2 points per axis");
  HEMP_REQUIRE(values_.size() == xs_.size() * ys_.size(),
               "BilinearGrid: values size must be nx * ny");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    HEMP_REQUIRE(xs_[i - 1] < xs_[i], "BilinearGrid: x axis must be strictly increasing");
  }
  for (std::size_t j = 1; j < ys_.size(); ++j) {
    HEMP_REQUIRE(ys_[j - 1] < ys_[j], "BilinearGrid: y axis must be strictly increasing");
  }
  x_inv_pitch_ = uniform_inv_pitch(xs_);
  y_inv_pitch_ = uniform_inv_pitch(ys_);
}

std::size_t BilinearGrid::x_segment(double x) const {
  if (x_inv_pitch_ > 0.0) {
    const auto i = static_cast<std::ptrdiff_t>((x - xs_.front()) * x_inv_pitch_);
    return static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(xs_.size()) - 2));
  }
  return segment_index(xs_, x);
}

std::size_t BilinearGrid::y_segment(double y) const {
  if (y_inv_pitch_ > 0.0) {
    const auto j = static_cast<std::ptrdiff_t>((y - ys_.front()) * y_inv_pitch_);
    return static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(j, 0, static_cast<std::ptrdiff_t>(ys_.size()) - 2));
  }
  return segment_index(ys_, y);
}

double BilinearGrid::operator()(double x, double y) const {
  HEMP_REQUIRE(!values_.empty(), "BilinearGrid: empty grid");
  const double xc = std::clamp(x, xs_.front(), xs_.back());
  const double yc = std::clamp(y, ys_.front(), ys_.back());
  const std::size_t i = x_segment(xc);
  const std::size_t j = y_segment(yc);
  const double tx = (xc - xs_[i]) / (xs_[i + 1] - xs_[i]);
  const double ty = (yc - ys_[j]) / (ys_[j + 1] - ys_[j]);
  const std::size_t ny = ys_.size();
  const double z00 = values_[i * ny + j];
  const double z01 = values_[i * ny + j + 1];
  const double z10 = values_[(i + 1) * ny + j];
  const double z11 = values_[(i + 1) * ny + j + 1];
  const double lo = z00 + ty * (z01 - z00);
  const double hi = z10 + ty * (z11 - z10);
  return lo + tx * (hi - lo);
}

bool BilinearGrid::contains(double x, double y) const {
  if (values_.empty()) return false;
  return x >= xs_.front() && x <= xs_.back() && y >= ys_.front() && y <= ys_.back();
}

PiecewiseLinear::PiecewiseLinear(std::vector<std::pair<double, double>> knots)
    : knots_(std::move(knots)) {
  HEMP_REQUIRE(knots_.size() >= 2, "PiecewiseLinear: need at least 2 knots");
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    HEMP_REQUIRE(knots_[i - 1].first < knots_[i].first,
                 "PiecewiseLinear: x knots must be strictly increasing");
  }
}

PiecewiseLinear::PiecewiseLinear(const std::vector<double>& xs,
                                 const std::vector<double>& ys) {
  HEMP_REQUIRE(xs.size() == ys.size(), "PiecewiseLinear: xs/ys size mismatch");
  std::vector<std::pair<double, double>> knots;
  knots.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) knots.emplace_back(xs[i], ys[i]);
  *this = PiecewiseLinear(std::move(knots));
}

double PiecewiseLinear::operator()(double x) const {
  HEMP_REQUIRE(!knots_.empty(), "PiecewiseLinear: empty table");
  if (x <= knots_.front().first) {
    return extrapolate_ ? lerp_segment(x, knots_[0], knots_[1]) : knots_.front().second;
  }
  if (x >= knots_.back().first) {
    return extrapolate_
               ? lerp_segment(x, knots_[knots_.size() - 2], knots_.back())
               : knots_.back().second;
  }
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double v, const std::pair<double, double>& k) { return v < k.first; });
  return lerp_segment(x, *(it - 1), *it);
}

bool PiecewiseLinear::monotone_increasing() const {
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (knots_[i].second <= knots_[i - 1].second) return false;
  }
  return true;
}

bool PiecewiseLinear::monotone_decreasing() const {
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (knots_[i].second >= knots_[i - 1].second) return false;
  }
  return true;
}

double PiecewiseLinear::inverse(double y) const {
  const bool inc = monotone_increasing();
  const bool dec = monotone_decreasing();
  HEMP_REQUIRE(inc || dec, "PiecewiseLinear::inverse: y values must be monotone");
  // Normalize to an increasing search.
  auto y_at = [&](std::size_t i) { return knots_[i].second; };
  const std::size_t n = knots_.size();
  if (inc) {
    if (y <= y_at(0)) return knots_.front().first;
    if (y >= y_at(n - 1)) return knots_.back().first;
    for (std::size_t i = 1; i < n; ++i) {
      if (y <= y_at(i)) {
        const double t = (y - y_at(i - 1)) / (y_at(i) - y_at(i - 1));
        return knots_[i - 1].first + t * (knots_[i].first - knots_[i - 1].first);
      }
    }
  } else {
    if (y >= y_at(0)) return knots_.front().first;
    if (y <= y_at(n - 1)) return knots_.back().first;
    for (std::size_t i = 1; i < n; ++i) {
      if (y >= y_at(i)) {
        const double t = (y - y_at(i - 1)) / (y_at(i) - y_at(i - 1));
        return knots_[i - 1].first + t * (knots_[i].first - knots_[i - 1].first);
      }
    }
  }
  throw ConvergenceError("PiecewiseLinear::inverse: lookup failed");
}

}  // namespace hemp
