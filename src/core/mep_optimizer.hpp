// Minimum-energy-point analysis (paper Sec. V, Eq. 5, Figs. 7b / 11a).
//
// Conventional MEP minimizes the processor's energy per cycle
//   E(V) = E_dyn(V) + E_leak(V)  =  Ceff V^2 + P_leak(V)/f(V).
// The holistic MEP divides by the regulator efficiency at that operating
// point, E_hol(V) = E(V) / eta(V_mpp, V, P(V)), which shifts the minimum to a
// higher voltage (regulators are inefficient at light load / low Vout) and
// saves energy relative to blindly operating at the conventional MEP.
#pragma once

#include "core/system_model.hpp"

namespace hemp {

struct MepPoint {
  Volts vdd{0.0};
  Joules energy_per_cycle{0.0};  ///< at the source for holistic; at the rail otherwise
  Hertz frequency{0.0};
  bool feasible = false;
};

class ModelSurfaces;

class MepOptimizer {
 public:
  explicit MepOptimizer(const SystemModel& model);

  /// Solve with memoized surfaces: MPP and max-frequency lookups come from
  /// the interpolated grids (accuracy per SurfaceConfig::tolerance).  The
  /// per-voltage regulator efficiency stays exact — the MEP objective
  /// evaluates it at the full-speed load, not at the delivered-power
  /// operating point the efficiency surface tabulates.
  explicit MepOptimizer(const ModelSurfaces& surfaces);

  /// Conventional MEP: regulator ignored (Fig. 7b dashed curve).
  [[nodiscard]] MepPoint conventional() const;

  /// Holistic MEP at light level `g`: regulator efficiency folded in.
  [[nodiscard]] MepPoint holistic(double g) const;

  /// Source-side energy per cycle of running at `vdd` under light `g`
  /// (what the harvesting system actually pays).
  [[nodiscard]] Joules source_energy_per_cycle(Volts vdd, double g) const;

  /// Rail-side energy per cycle at `vdd` (conventional objective).
  [[nodiscard]] Joules rail_energy_per_cycle(Volts vdd) const;

  struct Comparison {
    MepPoint conventional;
    MepPoint holistic;
    /// Upward shift of the minimum-energy voltage (paper: ~ +0.1 V).
    Volts voltage_shift{0.0};
    /// Source-side energy saved by operating at the holistic MEP instead of
    /// the conventional MEP (paper: up to ~31%).
    double energy_saving = 0.0;  // unit-lint: dimensionless fraction saved
  };
  [[nodiscard]] Comparison compare(double g) const;

 private:
  [[nodiscard]] MaxPowerPoint mpp(double g) const;
  [[nodiscard]] Hertz max_frequency(Volts vdd) const;

  const SystemModel* model_;
  const ModelSurfaces* surfaces_ = nullptr;
};

}  // namespace hemp
