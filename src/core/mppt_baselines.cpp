#include "core/mppt_baselines.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace hemp {
namespace {

DvfsLadder baseline_ladder(const Processor& proc, Volts ceiling, int steps) {
  const double lo = proc.min_voltage().value();
  const double hi = std::min(ceiling.value(), proc.max_voltage().value());
  HEMP_REQUIRE(hi > lo, "MPPT baseline: empty DVFS range");
  std::vector<OperatingPoint> levels;
  levels.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const Volts v(lo + (hi - lo) * i / (steps - 1));
    levels.push_back({v, proc.max_frequency(v)});
  }
  return DvfsLadder(std::move(levels));
}

}  // namespace

void PerturbObserveParams::validate() const {
  HEMP_REQUIRE(perturb_period.value() > 0.0, "P&O: bad perturb period");
  HEMP_REQUIRE(dvfs_steps >= 4, "P&O: need >= 4 DVFS steps");
}

PerturbObserveController::PerturbObserveController(const SystemModel& model,
                                                   const PerturbObserveParams& params)
    : model_(&model), params_(params),
      ladder_(baseline_ladder(model.processor(), params.vdd_ceiling,
                              params.dvfs_steps)) {
  params_.validate();
}

void PerturbObserveController::apply_level(SocCommand& cmd) {
  const OperatingPoint& op = ladder_.at(level_);
  cmd.vdd_target = op.vdd;
  cmd.frequency = op.frequency;
}

void PerturbObserveController::on_start(const SocState& state, SocCommand& cmd) {
  (void)state;
  cmd.path = PowerPath::kRegulated;
  cmd.run = true;
  level_ = 0;
  apply_level(cmd);
}

void PerturbObserveController::on_tick(const SocState& state, SocCommand& cmd) {
  if (state.time < next_perturb_) return;
  next_perturb_ = state.time + params_.perturb_period;
  // Observe: the power sensor reads the instantaneous harvest.
  const Watts p = state.p_harvest;
  if (perturbations_ > 0) {
    if (p < prev_power_) {
      direction_ = -direction_;  // got worse: reverse the hill climb
      ++reversals_;
    }
  }
  prev_power_ = p;
  // Perturb.
  const long next = static_cast<long>(level_) + direction_;
  if (next < 0 || next >= static_cast<long>(ladder_.size())) {
    direction_ = -direction_;
  } else {
    level_ = static_cast<std::size_t>(next);
  }
  apply_level(cmd);
  ++perturbations_;
}

void FractionalVocParams::validate() const {
  HEMP_REQUIRE(voc_fraction > 0.0 && voc_fraction < 1.0,
               "FractionalVoc: fraction must be in (0, 1)");
  HEMP_REQUIRE(sample_period > sample_window,
               "FractionalVoc: sample period must exceed the window");
  HEMP_REQUIRE(sample_window.value() > 0.0, "FractionalVoc: bad sample window");
  HEMP_REQUIRE(control_period.value() > 0.0, "FractionalVoc: bad control period");
  HEMP_REQUIRE(dvfs_steps >= 4, "FractionalVoc: need >= 4 DVFS steps");
}

FractionalVocController::FractionalVocController(const SystemModel& model,
                                                 const FractionalVocParams& params)
    : model_(&model), params_(params),
      ladder_(baseline_ladder(model.processor(), params.vdd_ceiling,
                              params.dvfs_steps)) {
  params_.validate();
}

void FractionalVocController::apply_level(SocCommand& cmd) {
  const OperatingPoint& op = ladder_.at(level_);
  cmd.vdd_target = op.vdd;
  cmd.frequency = op.frequency;
}

void FractionalVocController::on_start(const SocState& state, SocCommand& cmd) {
  cmd.path = PowerPath::kRegulated;
  cmd.run = true;
  level_ = 0;
  prev_v_solar_ = state.v_solar;
  // First Voc sample happens immediately (cold start needs a target).
  sampling_ = true;
  sample_ends_ = state.time + params_.sample_window;
  next_sample_ = state.time + params_.sample_period;
  cmd.run = false;  // open the load
}

void FractionalVocController::on_tick(const SocState& state, SocCommand& cmd) {
  if (sampling_) {
    if (state.time < sample_ends_) return;  // node still rising toward Voc
    // Sample: the node is (approximately) at open circuit now.
    v_target_ = Volts(params_.voc_fraction * state.v_solar.value());
    sampling_ = false;
    ++samples_;
    cmd.run = true;
    apply_level(cmd);
    return;
  }
  if (state.time >= next_sample_) {
    sampling_ = true;
    sample_ends_ = state.time + params_.sample_window;
    next_sample_ = state.time + params_.sample_period;
    cmd.run = false;  // open the load for the next Voc sample
    return;
  }
  // Regulate the node toward k * Voc with the damped ladder stepper.
  if (state.time < next_control_) return;
  next_control_ = state.time + params_.control_period;
  const double err = state.v_solar.value() - v_target_.value();
  const double dv = state.v_solar.value() - prev_v_solar_.value();
  prev_v_solar_ = state.v_solar;
  const double slew = params_.slew_tolerance.value();
  if (err > params_.deadband.value() && dv > -slew) {
    level_ = std::min(level_ + 1, ladder_.size() - 1);
    apply_level(cmd);
  } else if (err < -params_.deadband.value() && dv < slew) {
    level_ = level_ > 0 ? level_ - 1 : 0;
    apply_level(cmd);
  }
}

}  // namespace hemp
