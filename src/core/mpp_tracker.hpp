// Time-based maximum-power-point tracking (paper Sec. VI-A, Eqs. 6-7, Fig. 8).
//
// Instead of sensing current, the scheme measures how long the solar-node
// voltage takes to fall between two comparator thresholds while the load is
// known.  From the capacitor energy balance over that interval,
//
//   (P_draw - P_in) * t = C * (V1^2 - V2^2) / 2
//   =>  P_in = P_draw - C * (V1^2 - V2^2) / (2 t)                      (Eq. 7)
//
// the incoming solar power follows directly.  A lookup table built offline
// from the cell's I-V family maps the estimated input power to the new MPP
// voltage, and DVFS retargets the load to hold the node there.
#pragma once

#include <optional>

#include "common/interpolation.hpp"
#include "common/units.hpp"
#include "core/system_model.hpp"
#include "processor/processor.hpp"
#include "sim/soc_system.hpp"
#include "storage/comparator.hpp"

namespace hemp {

/// Eq. 7: input power from a measured V1 -> V2 fall time under load `p_draw`.
Watts estimate_input_power(Watts p_draw, Farads c, Volts v1, Volts v2, Seconds t);

/// Offline-built lookup table from measured input power to the MPP voltage.
class MppLut {
 public:
  /// Sample the cell's I-V family across irradiance [g_min, g_max]; the
  /// "measured power" axis is the cell output at `measure_voltage` (the
  /// midpoint of the comparator window, where Eq. 7's estimate applies).
  MppLut(const PvCell& cell, Volts measure_voltage, double g_min = 0.02,
         double g_max = 1.2, int samples = 48);

  /// MPP voltage for an estimated input power (clamped to the table range).
  [[nodiscard]] Volts mpp_voltage_for(Watts p_in) const;
  /// Estimated irradiance for an input power (diagnostics / tests).
  [[nodiscard]] double irradiance_for(Watts p_in) const;
  /// Available MPP power for an estimated input power.
  [[nodiscard]] Watts mpp_power_for(Watts p_in) const;

  [[nodiscard]] Volts measure_voltage() const { return measure_voltage_; }

 private:
  Volts measure_voltage_;
  PiecewiseLinear power_to_vmpp_;
  PiecewiseLinear power_to_g_;
  PiecewiseLinear power_to_pmpp_;
};

struct MppTrackerParams {
  /// How often the DVFS loop nudges the operating point.
  Seconds control_period{500e-6};
  /// Solar-node voltage error tolerated before stepping DVFS.
  Volts deadband{0.02};
  /// Slew tolerance for derivative damping: when the node is already moving
  /// toward the target faster than this per control period, hold the ladder
  /// (the node integrates power imbalance, so stepping while it slews causes
  /// limit cycling).
  Volts slew_tolerance{0.002};
  /// Threshold-timer window (paper Fig. 8's V1 and V2).
  Volts v_high{1.0};
  Volts v_low{0.9};
  /// Must match the SoC's solar storage cap (Eq. 7's C).
  Farads solar_capacitance{47e-6};
  /// Number of DVFS ladder steps.
  int dvfs_steps = 48;
  /// Highest Vdd the ladder uses (stays inside the regulator envelope).
  Volts vdd_ceiling{0.8};

  void validate() const;
};

/// Runtime MPP-tracking DVFS controller.
///
/// Steady state: proportional ladder stepping keeps the solar node at the MPP
/// voltage (drawing more pulls the node down, drawing less lets it rise).
/// Transient: when the light collapses, the node falls through the timer
/// window; Eq. 7 estimates the new input power; the LUT yields the new MPP
/// target and the ladder is re-seeded near the sustainable level.
class MppTrackingController : public SocController {
 public:
  MppTrackingController(const SystemModel& model, const MppTrackerParams& params);

  void on_start(const SocState& state, SocCommand& cmd) override;
  void on_tick(const SocState& state, SocCommand& cmd) override;
  void step_hint(const SocState& state, SocStepHint& hint) const override;

  [[nodiscard]] Volts target_voltage() const { return v_target_; }
  [[nodiscard]] std::optional<Watts> last_power_estimate() const {
    return last_estimate_;
  }
  [[nodiscard]] int retarget_count() const { return retargets_; }

 private:
  /// Step the DVFS ladder: positive = draw more power (higher level).
  void step(int delta, SocCommand& cmd);
  /// Seed the ladder at the level whose source draw best matches `p_budget`.
  void seed_for_budget(Watts p_budget, const SocState& state, SocCommand& cmd);

  const SystemModel* model_;
  MppTrackerParams params_;
  MppLut lut_;
  DvfsLadder ladder_;
  ThresholdTimer timer_;
  /// Cold-start MPP target, solved once at construction so on_start (and the
  /// stepped fast path) never runs the exact MPP solver.
  Volts v_mpp_full_sun_{0.0};
  std::size_t level_ = 0;
  Volts v_target_{0.0};
  Volts prev_v_solar_{0.0};
  Seconds next_control_{0.0};
  std::optional<Watts> last_estimate_;
  int retargets_ = 0;
};

}  // namespace hemp
