#include "core/perf_optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "common/solver_stats.hpp"
#include "core/model_surfaces.hpp"

namespace hemp {

PerformanceOptimizer::PerformanceOptimizer(const SystemModel& model)
    : model_(&model) {}

PerformanceOptimizer::PerformanceOptimizer(const ModelSurfaces& surfaces)
    : model_(&surfaces.model()), surfaces_(&surfaces) {}

Watts PerformanceOptimizer::delivered(Volts vdd, double g) const {
  return surfaces_ ? surfaces_->delivered_power(vdd, g)
                   : model_->delivered_power(vdd, g);
}

double PerformanceOptimizer::efficiency(Volts vdd, double g) const {
  return surfaces_ ? surfaces_->efficiency_at(vdd, g)
                   : model_->efficiency_at(vdd, g);
}

MaxPowerPoint PerformanceOptimizer::mpp(double g) const {
  return surfaces_ ? surfaces_->mpp(g) : model_->mpp(g);
}

Hertz PerformanceOptimizer::max_frequency(Volts vdd) const {
  return surfaces_ ? surfaces_->max_frequency(vdd)
                   : model_->processor().max_frequency(vdd);
}

PerfPoint PerformanceOptimizer::unregulated(double g) const {
  const Processor& proc = model_->processor();
  const PvCell& cell = model_->cell();
  if (g <= 0.0) return {};

  const double v_lo = proc.min_voltage().value();
  const double v_hi = std::min(proc.max_voltage().value(),
                               cell.open_circuit_voltage(g).value());
  if (v_hi <= v_lo) return {};

  // Surplus of solar power over full-speed processor draw on the shared node.
  auto surplus = [&](double v) {
    return cell.power(Volts(v), g).value() - proc.max_power(Volts(v)).value();
  };

  PerfPoint out;
  if (surplus(v_hi) >= 0.0) {
    // Harvester out-powers the core everywhere: run flat out at max voltage.
    out.vdd = Volts(v_hi);
  } else if (surplus(v_lo) <= 0.0) {
    // Even the lowest operating point cannot be fed at full speed.
    return {};
  } else {
    out.vdd = Volts(numeric::brent_root(surplus, v_lo, v_hi, {.x_tol = 1e-7}));
  }
  out.frequency = proc.max_frequency(out.vdd);
  out.processor_power = proc.max_power(out.vdd);
  out.harvested_power = cell.power(out.vdd, g);
  out.efficiency = 1.0;
  out.feasible = true;
  return out;
}

PerfPoint PerformanceOptimizer::regulated(double g) const {
  const Processor& proc = model_->processor();
  if (g <= 0.0) return {};
  // Only the exact-model path counts as an expensive solve: the surface
  // variant reads the memoized bilinear grids and stays off the hot-path
  // audit (common/solver_stats).
  if (surfaces_ == nullptr) solver_stats::count_exact_regulated_solve();

  const double v_lo = proc.min_voltage().value();
  const double v_hi = proc.max_voltage().value();

  // Budget surplus at full speed.  delivered_power is 0 outside the
  // regulator envelope, so infeasible voltages read as negative surplus.
  auto surplus = [&](double v) {
    return delivered(Volts(v), g).value() - proc.max_power(Volts(v)).value();
  };

  // The surplus can be non-monotone near regulator ratio switches; find the
  // highest feasible voltage with a descending grid scan + local refinement.
  constexpr int kGrid = 128;
  double v_found = -1.0;
  double prev_v = v_hi;
  if (surplus(v_hi) >= 0.0) {
    v_found = v_hi;
  } else {
    for (int i = 1; i <= kGrid; ++i) {
      const double v = v_hi - (v_hi - v_lo) * i / kGrid;
      if (surplus(v) >= 0.0) {
        // Feasible at v, infeasible at prev_v: refine the boundary.
        v_found = numeric::brent_root(surplus, v, prev_v, {.x_tol = 1e-7});
        break;
      }
      prev_v = v;
    }
  }
  if (v_found < 0.0) return {};

  PerfPoint out;
  out.vdd = Volts(v_found);
  out.frequency = max_frequency(out.vdd);
  out.processor_power = proc.max_power(out.vdd);
  out.harvested_power = mpp(g).power;
  out.efficiency = efficiency(out.vdd, g);
  out.feasible = true;
  return out;
}

PerformanceOptimizer::Comparison PerformanceOptimizer::compare(double g) const {
  Comparison c;
  c.unregulated = unregulated(g);
  c.regulated = regulated(g);
  if (c.unregulated.feasible && c.regulated.feasible &&
      c.unregulated.processor_power.value() > 0.0) {
    c.power_gain =
        c.regulated.processor_power / c.unregulated.processor_power - 1.0;
    c.speed_gain = c.regulated.frequency / c.unregulated.frequency - 1.0;
  }
  return c;
}

}  // namespace hemp
