// Holistic runtime energy manager (the paper's "intelligent scheduling and
// management", contribution 2).
//
// A SocController state machine that composes every mechanism in the paper:
//   * steady state: MPP-tracking DVFS (Sec. VI-A) in max-performance mode, or
//     holding the holistic minimum-energy point (Sec. V) in min-energy mode;
//   * low light: bypasses the regulator below the Fig. 7a crossover and runs
//     the core straight off the cell;
//   * deadlines: plans and executes a sprint (Sec. VI-B) for each submitted
//     job, with regulator bypass at the tail, then recovers the storage cap
//     at a large duty cycle before resuming steady-state operation.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "core/mep_optimizer.hpp"
#include "core/mpp_tracker.hpp"
#include "core/regulator_selector.hpp"
#include "core/sprint_scheduler.hpp"
#include "core/system_model.hpp"
#include "sim/soc_system.hpp"

namespace hemp {

enum class ManagerMode {
  kMaxPerformance,  ///< track MPP, run as fast as the harvest allows
  kMinEnergy,       ///< hold the holistic MEP (background/maintenance work)
};

/// Order in which queued deadline jobs are started.
enum class QueueDiscipline {
  kFifo,  ///< submission order (the original behavior)
  kEdf,   ///< earliest absolute deadline first, stale jobs dropped as missed
};

struct EnergyManagerParams {
  ManagerMode mode = ManagerMode::kMaxPerformance;
  MppTrackerParams tracker{};
  /// Sprint factor used for deadline jobs (paper demonstrates 20%).
  double sprint_factor = 0.2;
  /// After a sprint, idle until the solar node recovers above this voltage.
  Volts recover_voltage{1.05};
  /// false disables the Fig. 7a low-light bypass entirely: the node stays on
  /// the regulator no matter how dim the sky gets (policy-zoo ablation).
  bool low_light_bypass_enabled = true;
  /// Hysteresis around the low-light bypass decision (fractions of the
  /// crossover power).
  double bypass_enter_ratio = 0.9;
  double bypass_exit_ratio = 1.2;
  /// How often the steady-state light estimate is refreshed.
  Seconds reassess_period{2e-3};
  QueueDiscipline queue_discipline = QueueDiscipline::kFifo;

  void validate() const;
};

struct JobRequest {
  double cycles = 0.0;
  Seconds relative_deadline{0.0};
};

class EnergyManager : public SocController {
 public:
  EnergyManager(const SystemModel& model, const EnergyManagerParams& params);

  /// Queue a deadline job; it starts at the next tick after the current
  /// activity finishes (or immediately when tracking).  The deadline clock
  /// starts at the last observed tick time (use submit_at from controller
  /// callbacks, which know the exact current time).
  void submit(const JobRequest& job);

  /// Queue a deadline job whose deadline is absolute at `now + relative`.
  /// Only the kEdf discipline reads the absolute deadline; under kFifo this
  /// is byte-for-byte the original submit behavior.
  void submit_at(const JobRequest& job, Seconds now);

  void on_start(const SocState& state, SocCommand& cmd) override;
  void on_tick(const SocState& state, SocCommand& cmd) override;
  void step_hint(const SocState& state, SocStepHint& hint) const override;

  [[nodiscard]] int jobs_completed() const { return jobs_completed_; }
  [[nodiscard]] int jobs_missed() const { return jobs_missed_; }
  [[nodiscard]] bool in_bypass() const { return low_light_bypass_; }
  [[nodiscard]] bool sprinting() const { return sprint_.has_value(); }
  /// Latest steady-state estimate of the incoming solar power.
  [[nodiscard]] std::optional<Watts> light_estimate() const { return p_in_estimate_; }

 private:
  struct ActiveSprint {
    SprintPlan plan;
    Seconds started{0.0};
    double start_cycles = 0.0;
    bool bypassed = false;
  };

  void enter_tracking(const SocState& state, SocCommand& cmd);
  void start_next_job(const SocState& state, SocCommand& cmd);
  void tick_tracking(const SocState& state, SocCommand& cmd);
  void tick_sprinting(const SocState& state, SocCommand& cmd);
  void tick_recovering(const SocState& state, SocCommand& cmd);
  void refresh_light_estimate(const SocState& state, const SocCommand& cmd);
  void apply_mep_point(SocCommand& cmd, double g_estimate);

  /// One queued job: the request plus the absolute deadline stamped at
  /// submission (read only by the kEdf discipline).
  struct PendingJob {
    JobRequest job{};
    Seconds absolute_deadline{0.0};
  };

  [[nodiscard]] bool queue_empty() const { return q_count_ == 0; }
  [[nodiscard]] PendingJob pop_job();
  void grow_queue();

  const SystemModel* model_;
  EnergyManagerParams params_;
  MppTrackingController tracker_;
  SprintScheduler scheduler_;
  MepOptimizer mep_;

  enum class State { kTracking, kSprinting, kRecovering };
  State state_ = State::kTracking;

  /// Pending jobs as a ring buffer: submit() runs from controller hot paths
  /// (hemp-analyzer hot-path-purity), so the steady state is an indexed write
  /// into pre-sized storage rather than a per-job allocation.
  std::vector<PendingJob> queue_;
  std::size_t q_head_ = 0;
  std::size_t q_count_ = 0;
  /// Last tick time — the deadline clock for submit() without an explicit now.
  Seconds now_{0.0};
  std::optional<ActiveSprint> sprint_;
  int jobs_completed_ = 0;
  int jobs_missed_ = 0;

  bool low_light_bypass_ = false;
  Watts crossover_power_{0.0};
  /// model().mpp(1.0).power solved once at construction — kMinEnergy mode
  /// normalizes the light estimate against it every tick.
  Watts full_sun_mpp_power_{0.0};
  /// Holistic MEP solutions memoized per quantized irradiance bucket — the
  /// MEP solve is a grid optimization and must not run every tick.
  std::map<int, MepPoint> mep_cache_;
  std::optional<Watts> p_in_estimate_;
  Seconds next_reassess_{0.0};
  Volts prev_v_solar_{0.0};
};

/// Wraps an EnergyManager and submits one deadline job every `period`,
/// starting at `phase` — the stand-in for a sense/compute duty cycle used by
/// the fleet simulator and the managed policies.
class PeriodicJobController : public SocController {
 public:
  PeriodicJobController(EnergyManager& manager, double job_cycles,
                        Seconds period, Seconds deadline, Seconds phase);

  void on_start(const SocState& state, SocCommand& cmd) override;
  void on_tick(const SocState& state, SocCommand& cmd) override;
  void on_comparator(const ComparatorEvent& event, const SocState& state,
                     SocCommand& cmd) override;
  void step_hint(const SocState& state, SocStepHint& hint) const override;

  [[nodiscard]] int jobs_submitted() const { return jobs_submitted_; }

 private:
  EnergyManager* manager_;
  double job_cycles_;
  Seconds period_;
  Seconds deadline_;
  Seconds next_submit_;
  int jobs_submitted_ = 0;
};

}  // namespace hemp
