#include "core/envelope.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/perf_optimizer.hpp"

namespace hemp {

void EnvelopeParams::validate() const {
  HEMP_REQUIRE(step.value() > 0.0, "Envelope: step must be positive");
  HEMP_REQUIRE(irradiance_buckets >= 10, "Envelope: need >= 10 irradiance buckets");
}

EnvelopeSimulator::EnvelopeSimulator(const SystemModel& model) : model_(&model) {}

EnvelopeSimulator::Decision EnvelopeSimulator::decide(
    double g, const EnvelopeParams& params) const {
  const int g_bucket = static_cast<int>(g * params.irradiance_buckets + 0.5);
  const int policy_key = static_cast<int>(params.policy);
  const auto key = std::make_pair(policy_key, g_bucket);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  Decision d;
  const double g_q =
      static_cast<double>(g_bucket) / params.irradiance_buckets;
  if (g_q > 0.0) {
    const PerformanceOptimizer perf(*model_);
    const RegulatorSelector selector(*model_);
    const PathDecision path = selector.decide(g_q);
    const PerfPoint& best =
        path.use_regulator ? path.regulated : path.unregulated;
    if (best.feasible) {
      if (params.policy == EnvelopePolicy::kMaxPerformance) {
        d.viable = true;
        d.bypassed = !path.use_regulator;
        d.vdd = best.vdd;
        d.frequency = best.frequency;
        d.processor_power = best.processor_power;
        d.harvest = path.use_regulator ? model_->mpp(g_q).power
                                       : best.harvested_power;
      } else {
        // Min-energy policy: sit at the holistic MEP if the harvest covers
        // it; otherwise fall back to whatever the performance point allows.
        const MepOptimizer mep(*model_);
        const MepPoint point = mep.holistic(g_q);
        const Watts budget = model_->delivered_power(point.vdd, g_q);
        const Watts need = model_->processor().max_power(point.vdd);
        if (point.feasible && need.value() <= budget.value()) {
          d.viable = true;
          d.bypassed = false;
          d.vdd = point.vdd;
          d.frequency = point.frequency;
          d.processor_power = need;
          // Harvester throttles to the load: no storage grows unboundedly.
          d.harvest = Watts(need.value() / model_->efficiency_at(point.vdd, g_q));
        } else if (best.feasible) {
          d.viable = true;
          d.bypassed = !path.use_regulator;
          d.vdd = best.vdd;
          d.frequency = best.frequency;
          d.processor_power = best.processor_power;
          d.harvest = path.use_regulator ? model_->mpp(g_q).power
                                         : best.harvested_power;
        }
      }
    }
  }
  cache_.emplace(key, d);
  return d;
}

EnvelopeResult EnvelopeSimulator::run(const IrradianceTrace& light, Seconds horizon,
                                      const EnvelopeParams& params) const {
  params.validate();
  HEMP_CHECK_RANGE(horizon.value() > 0.0, "Envelope: non-positive horizon");

  EnvelopeResult out;
  const double dt = params.step.value();
  const long steps = static_cast<long>(std::ceil(horizon.value() / dt));
  const long decimation = std::max<long>(steps / 512, 1);

  for (long i = 0; i < steps; ++i) {
    const Seconds t(i * dt);
    const double g = light.at(t);
    const Decision d = decide(g, params);
    if (d.viable) {
      out.lit_time += Seconds(dt);
      out.cycles += d.frequency.value() * dt;
      out.harvested += d.harvest * Seconds(dt);
      out.delivered += d.processor_power * Seconds(dt);
    } else {
      out.dark_time += Seconds(dt);
    }
    if (i % decimation == 0) {
      out.trace.push_back({t, g, d.vdd, d.frequency, d.harvest, d.bypassed});
    }
  }
  return out;
}

}  // namespace hemp
