#include "core/mep_optimizer.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "core/model_surfaces.hpp"

namespace hemp {

MepOptimizer::MepOptimizer(const SystemModel& model) : model_(&model) {}

MepOptimizer::MepOptimizer(const ModelSurfaces& surfaces)
    : model_(&surfaces.model()), surfaces_(&surfaces) {}

MaxPowerPoint MepOptimizer::mpp(double g) const {
  return surfaces_ ? surfaces_->mpp(g) : model_->mpp(g);
}

Hertz MepOptimizer::max_frequency(Volts vdd) const {
  return surfaces_ ? surfaces_->max_frequency(vdd)
                   : model_->processor().max_frequency(vdd);
}

Joules MepOptimizer::rail_energy_per_cycle(Volts vdd) const {
  return model_->processor().energy_per_cycle(vdd);
}

Joules MepOptimizer::source_energy_per_cycle(Volts vdd, double g) const {
  const Processor& proc = model_->processor();
  const MaxPowerPoint point = mpp(g);
  const Regulator& reg = model_->regulator();
  const Joules rail = proc.energy_per_cycle(vdd);
  if (!reg.supports(point.voltage, vdd)) {
    return Joules(std::numeric_limits<double>::infinity());
  }
  const Watts load = proc.max_power(vdd);
  const double eta = reg.efficiency(point.voltage, vdd, load);
  if (eta <= 0.0) return Joules(std::numeric_limits<double>::infinity());
  return Joules(rail.value() / eta);
}

MepPoint MepOptimizer::conventional() const {
  const Processor& proc = model_->processor();
  auto objective = [&](double v) { return rail_energy_per_cycle(Volts(v)).value(); };
  const auto r = numeric::grid_refine_minimize(
      objective, proc.min_voltage().value(), proc.max_voltage().value(),
      {.x_tol = 1e-6, .grid_points = 160});
  MepPoint out;
  out.vdd = Volts(r.x);
  out.energy_per_cycle = Joules(r.value);
  out.frequency = proc.max_frequency(out.vdd);
  out.feasible = true;
  return out;
}

MepPoint MepOptimizer::holistic(double g) const {
  const Processor& proc = model_->processor();
  auto objective = [&](double v) {
    return source_energy_per_cycle(Volts(v), g).value();
  };
  const auto r = numeric::grid_refine_minimize(
      objective, proc.min_voltage().value(), proc.max_voltage().value(),
      {.x_tol = 1e-6, .grid_points = 160});
  MepPoint out;
  if (!std::isfinite(r.value)) return out;
  out.vdd = Volts(r.x);
  out.energy_per_cycle = Joules(r.value);
  out.frequency = max_frequency(out.vdd);
  out.feasible = true;
  return out;
}

MepOptimizer::Comparison MepOptimizer::compare(double g) const {
  Comparison c;
  c.conventional = conventional();
  c.holistic = holistic(g);
  if (c.conventional.feasible && c.holistic.feasible) {
    c.voltage_shift = c.holistic.vdd - c.conventional.vdd;
    // What the source pays at each choice of operating voltage.
    const double at_conventional =
        source_energy_per_cycle(c.conventional.vdd, g).value();
    const double at_holistic = c.holistic.energy_per_cycle.value();
    if (std::isfinite(at_conventional) && at_conventional > 0.0) {
      c.energy_saving = 1.0 - at_holistic / at_conventional;
    } else {
      // Conventional MEP is not even reachable through this regulator.
      c.energy_saving = 1.0;
    }
  }
  return c;
}

}  // namespace hemp
