#include "core/regulator_selector.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "core/model_surfaces.hpp"

namespace hemp {

RegulatorSelector::RegulatorSelector(const SystemModel& model)
    : model_(&model), optimizer_(model) {}

RegulatorSelector::RegulatorSelector(const ModelSurfaces& surfaces)
    : model_(&surfaces.model()), optimizer_(surfaces) {}

PathDecision RegulatorSelector::decide(double g) const {
  PathDecision d;
  d.regulated = optimizer_.regulated(g);
  d.unregulated = optimizer_.unregulated(g);
  const double p_reg = d.regulated.feasible ? d.regulated.processor_power.value() : 0.0;
  const double p_raw =
      d.unregulated.feasible ? d.unregulated.processor_power.value() : 0.0;
  if (p_raw > 0.0) {
    d.regulator_advantage = p_reg / p_raw - 1.0;
  } else {
    d.regulator_advantage = p_reg > 0.0 ? 1.0 : 0.0;
  }
  d.use_regulator = p_reg >= p_raw && d.regulated.feasible;
  return d;
}

std::optional<double> RegulatorSelector::crossover_irradiance(double g_min,
                                                              double g_max) const {
  HEMP_REQUIRE(0.0 < g_min && g_min < g_max, "RegulatorSelector: bad search range");
  auto advantage = [&](double g) { return decide(g).regulator_advantage; };
  const double lo = advantage(g_min);
  const double hi = advantage(g_max);
  if (std::signbit(lo) == std::signbit(hi)) return std::nullopt;
  return numeric::bisect_root(advantage, g_min, g_max, {.x_tol = 1e-4});
}

}  // namespace hemp
