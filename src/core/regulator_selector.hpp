// Light-dependent regulator/bypass selection (paper Sec. IV-B, Fig. 7a).
//
// Under strong light the converter wins: it lets the cell sit at MPP while
// the core runs at a lower Vdd.  Under weak light the converter's light-load
// losses exceed the MPP gain and bypassing (raw cell on the rail) delivers
// more power.  The paper's rule of thumb: below ~25% of full sun, bypass.
#pragma once

#include <optional>
#include <vector>

#include "core/perf_optimizer.hpp"
#include "core/system_model.hpp"

namespace hemp {

struct PathDecision {
  bool use_regulator = true;
  /// Best full-speed operating point down each path.
  PerfPoint regulated;
  PerfPoint unregulated;
  /// delivered(regulated)/delivered(unregulated) - 1; negative favours bypass.
  double regulator_advantage = 0.0;
};

class RegulatorSelector {
 public:
  explicit RegulatorSelector(const SystemModel& model);

  /// Decide from memoized surfaces: the inner performance optimizer solves
  /// against the interpolated grids, making dense crossover searches and
  /// per-tick path decisions orders of magnitude cheaper.
  explicit RegulatorSelector(const ModelSurfaces& surfaces);

  /// Decide the power path at light level `g` by comparing the processor
  /// power achievable down each path.
  [[nodiscard]] PathDecision decide(double g) const;

  /// Irradiance below which bypass beats the regulator (the Fig. 7a
  /// crossover).  Returns nullopt when one path dominates everywhere in
  /// (g_min, g_max).  The default lower bound is the dimmest light at which
  /// either path can still run the core at all.
  [[nodiscard]] std::optional<double> crossover_irradiance(double g_min = 0.05,
                                                           double g_max = 1.0) const;

 private:
  const SystemModel* model_;
  PerformanceOptimizer optimizer_;
};

}  // namespace hemp
