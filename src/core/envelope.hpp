// Quasi-static long-horizon simulator.
//
// The transient SoC simulator integrates microsecond capacitor dynamics —
// right for waveform-level questions (Figs. 8, 11b) but hopeless for "how
// many frames does this node process in a day".  The envelope simulator
// assumes the energy manager holds the system at its steady-state optimal
// operating point within each coarse step (which the transient sim shows it
// reaches within milliseconds) and integrates power and cycles over hours.
// Operating-point decisions are memoized per quantized irradiance, so a
// day-long run costs a handful of optimizer solves.
#pragma once

#include <map>

#include "core/mep_optimizer.hpp"
#include "core/regulator_selector.hpp"
#include "core/system_model.hpp"
#include "harvester/light_environment.hpp"

namespace hemp {

enum class EnvelopePolicy {
  kMaxPerformance,  ///< track MPP, spend everything on clocks
  kMinEnergy,       ///< hold the holistic MEP (fixed service rate)
};

struct EnvelopeParams {
  EnvelopePolicy policy = EnvelopePolicy::kMaxPerformance;
  /// Coarse integration step.
  Seconds step{1.0};
  /// Irradiance quantization for decision memoization (buckets per sun).
  int irradiance_buckets = 100;

  void validate() const;
};

struct EnvelopeSample {
  Seconds time{0.0};
  double irradiance = 0.0;
  Volts vdd{0.0};
  Hertz frequency{0.0};
  Watts harvest{0.0};
  bool bypassed = false;
};

struct EnvelopeResult {
  Joules harvested{0.0};
  Joules delivered{0.0};
  double cycles = 0.0;
  Seconds lit_time{0.0};   ///< time with a running clock
  Seconds dark_time{0.0};  ///< time too dark to operate at all
  /// Decimated trace of the operating envelope (~one sample per 100 steps).
  std::vector<EnvelopeSample> trace;
};

class EnvelopeSimulator {
 public:
  explicit EnvelopeSimulator(const SystemModel& model);

  [[nodiscard]] EnvelopeResult run(const IrradianceTrace& light, Seconds horizon,
                                   const EnvelopeParams& params = {}) const;

 private:
  struct Decision {
    bool viable = false;
    bool bypassed = false;
    Volts vdd{0.0};
    Hertz frequency{0.0};
    Watts processor_power{0.0};
    Watts harvest{0.0};
  };
  [[nodiscard]] Decision decide(double g, const EnvelopeParams& params) const;

  const SystemModel* model_;
  mutable std::map<std::pair<int, int>, Decision> cache_;
};

}  // namespace hemp
