#include "core/energy_manager.hpp"

#include <algorithm>
#include <cmath>

#include "common/annotations.hpp"
#include "common/error.hpp"

namespace hemp {

void EnergyManagerParams::validate() const {
  tracker.validate();
  HEMP_REQUIRE(sprint_factor >= 0.0 && sprint_factor <= 0.5,
               "EnergyManager: sprint factor in [0, 0.5]");
  HEMP_REQUIRE(recover_voltage.value() > 0.0, "EnergyManager: bad recover voltage");
  HEMP_REQUIRE(bypass_enter_ratio > 0.0 && bypass_enter_ratio < bypass_exit_ratio,
               "EnergyManager: bypass hysteresis must satisfy enter < exit");
  HEMP_REQUIRE(reassess_period.value() > 0.0, "EnergyManager: bad reassess period");
}

EnergyManager::EnergyManager(const SystemModel& model,
                             const EnergyManagerParams& params)
    : model_(&model), params_(params), tracker_(model, params.tracker),
      scheduler_(model), mep_(model) {
  params_.validate();
  // Precompute the low-light crossover (Fig. 7a): the incoming power below
  // which bypassing the regulator delivers more to the core.  A zero
  // crossover power disables the bypass rule entirely (refresh_light_estimate
  // guards on it), so policies that forbid bypassing skip the solve.
  if (params_.low_light_bypass_enabled) {
    RegulatorSelector selector(model);
    if (const auto g_cross = selector.crossover_irradiance()) {
      crossover_power_ = model.mpp(*g_cross).power;
    } else {
      crossover_power_ = Watts(0.0);  // regulator (or bypass) dominates everywhere
    }
  } else {
    crossover_power_ = Watts(0.0);
  }
  full_sun_mpp_power_ = model.mpp(1.0).power;
  queue_.resize(16);
}

void EnergyManager::submit(const JobRequest& job) { submit_at(job, now_); }

void EnergyManager::submit_at(const JobRequest& job, Seconds now) {
  // hemp-analyzer: allow(hot-path-purity) — precondition checks on the submit API
  HEMP_REQUIRE(job.cycles > 0.0, "EnergyManager: job needs positive cycles");
  // hemp-analyzer: allow(hot-path-purity) — precondition checks on the submit API
  HEMP_REQUIRE(job.relative_deadline.value() > 0.0,
               "EnergyManager: job needs a positive deadline");
  if (q_count_ == queue_.size()) {
    // hemp-analyzer: allow(hot-path-purity) — amortized ring growth past 16 pending jobs
    grow_queue();
  }
  queue_[(q_head_ + q_count_) % queue_.size()] =
      PendingJob{job, now + job.relative_deadline};
  ++q_count_;
}

EnergyManager::PendingJob EnergyManager::pop_job() {
  std::size_t pick = 0;
  if (params_.queue_discipline == QueueDiscipline::kEdf) {
    for (std::size_t i = 1; i < q_count_; ++i) {
      const std::size_t at = (q_head_ + i) % queue_.size();
      const std::size_t best = (q_head_ + pick) % queue_.size();
      if (queue_[at].absolute_deadline < queue_[best].absolute_deadline) pick = i;
    }
  }
  const PendingJob job = queue_[(q_head_ + pick) % queue_.size()];
  // Close the gap by shifting earlier entries up one slot (FIFO picks the
  // head, so the loop body never runs and the original pop survives intact).
  for (std::size_t i = pick; i > 0; --i) {
    queue_[(q_head_ + i) % queue_.size()] = queue_[(q_head_ + i - 1) % queue_.size()];
  }
  q_head_ = (q_head_ + 1) % queue_.size();
  --q_count_;
  return job;
}

void EnergyManager::grow_queue() {
  std::vector<PendingJob> bigger(queue_.size() * 2);
  for (std::size_t i = 0; i < q_count_; ++i) {
    bigger[i] = queue_[(q_head_ + i) % queue_.size()];
  }
  queue_ = std::move(bigger);
  q_head_ = 0;
}

void EnergyManager::on_start(const SocState& state, SocCommand& cmd) {
  now_ = state.time;
  tracker_.on_start(state, cmd);
  prev_v_solar_ = state.v_solar;
  enter_tracking(state, cmd);
}

void EnergyManager::enter_tracking(const SocState& state, SocCommand& cmd) {
  state_ = State::kTracking;
  cmd.path = low_light_bypass_ ? PowerPath::kBypass : PowerPath::kRegulated;
  cmd.run = true;
  if (params_.mode == ManagerMode::kMinEnergy && !low_light_bypass_) {
    apply_mep_point(cmd, state.irradiance > 0.0 ? 0.5 : 0.5);
  }
}

void EnergyManager::apply_mep_point(SocCommand& cmd, double g_estimate) {
  // Quantize to 0.05-sun buckets: the MEP barely moves with light, and the
  // holistic solve is far too expensive to run per tick.
  const int bucket = static_cast<int>(g_estimate * 20.0 + 0.5);
  auto it = mep_cache_.find(bucket);
  if (it == mep_cache_.end()) {
    // hemp-analyzer: allow(hot-path-purity) — memoized holistic MEP solve, once per light bucket
    it = mep_cache_.emplace(bucket, mep_.holistic(std::max(bucket, 1) / 20.0)).first;
  }
  const MepPoint& mep = it->second;
  if (mep.feasible) {
    cmd.vdd_target = mep.vdd;
    cmd.frequency = mep.frequency;
  }
}

HEMP_HOT void EnergyManager::on_tick(const SocState& state, SocCommand& cmd) {
  now_ = state.time;
  switch (state_) {
    case State::kTracking: tick_tracking(state, cmd); break;
    case State::kSprinting: tick_sprinting(state, cmd); break;
    case State::kRecovering: tick_recovering(state, cmd); break;
  }
}

void EnergyManager::refresh_light_estimate(const SocState& state,
                                           const SocCommand& cmd) {
  if (state.time < next_reassess_) return;
  next_reassess_ = state.time + params_.reassess_period;
  // Near equilibrium the node voltage is steady and the source draw equals
  // the incoming solar power — the only observable a real board has without
  // a current sensor.
  const double dv = std::fabs(state.v_solar.value() - prev_v_solar_.value());
  prev_v_solar_ = state.v_solar;
  if (dv > 0.01) return;  // node still slewing; estimate would be biased
  double p_draw = state.p_processor.value();
  if (!low_light_bypass_ && p_draw > 0.0) {
    const Regulator& reg = model_->regulator();
    if (reg.supports(state.v_solar, cmd.vdd_target)) {
      const double eta = reg.efficiency(state.v_solar, cmd.vdd_target, Watts(p_draw));
      if (eta > 0.0) p_draw /= eta;
    }
  }
  if (p_draw > 0.0) p_in_estimate_ = Watts(p_draw);

  // Low-light bypass hysteresis (Fig. 7a rule).
  if (p_in_estimate_ && crossover_power_.value() > 0.0) {
    const double p = p_in_estimate_->value();
    if (!low_light_bypass_ && p < params_.bypass_enter_ratio * crossover_power_.value()) {
      low_light_bypass_ = true;
    } else if (low_light_bypass_ &&
               p > params_.bypass_exit_ratio * crossover_power_.value()) {
      low_light_bypass_ = false;
    }
  }
}

void EnergyManager::start_next_job(const SocState& state, SocCommand& cmd) {
  const PendingJob pending = pop_job();
  const JobRequest& job = pending.job;
  Seconds budget = job.relative_deadline;
  if (params_.queue_discipline == QueueDiscipline::kEdf) {
    // EDF plans against the wall clock: a job that waited in the queue has
    // only its remaining slack, and a stale job is dropped rather than run.
    budget = pending.absolute_deadline - state.time;
    if (budget.value() <= 0.0) {
      ++jobs_missed_;
      return;
    }
  }
  // hemp-analyzer: allow(hot-path-purity) — per-job sprint planning, once per submitted job
  const SprintPlan plan =
      scheduler_.plan(job.cycles, budget, params_.sprint_factor);
  if (!plan.feasible) {
    ++jobs_missed_;
    return;
  }
  sprint_ = ActiveSprint{plan, state.time, state.cycles_retired, false};
  state_ = State::kSprinting;
  cmd.path = PowerPath::kRegulated;
  cmd.vdd_target = plan.slow.vdd;
  cmd.frequency = plan.slow.frequency;
  cmd.run = true;
}

void EnergyManager::tick_tracking(const SocState& state, SocCommand& cmd) {
  if (!queue_empty()) {
    start_next_job(state, cmd);
    return;
  }
  refresh_light_estimate(state, cmd);
  if (low_light_bypass_) {
    cmd.path = PowerPath::kBypass;
    // Ride the shared node: clock as fast as the rail allows.
    if (state.v_dd >= model_->processor().min_voltage() &&
        state.v_dd <= model_->processor().max_voltage()) {
      cmd.frequency = model_->processor().max_frequency(state.v_dd);
      cmd.run = true;
    } else {
      cmd.run = false;  // wait for the node to charge back up
    }
    return;
  }
  cmd.path = PowerPath::kRegulated;
  if (params_.mode == ManagerMode::kMaxPerformance) {
    tracker_.on_tick(state, cmd);
  } else {
    const double g = p_in_estimate_
                         ? std::clamp(p_in_estimate_->value() /
                                          std::max(full_sun_mpp_power_.value(), 1e-9),
                                      0.05, 1.0)
                         : 0.5;
    apply_mep_point(cmd, g);
  }
}

void EnergyManager::tick_sprinting(const SocState& state, SocCommand& cmd) {
  ActiveSprint& s = *sprint_;
  const double done_cycles = state.cycles_retired - s.start_cycles;
  const Seconds elapsed = state.time - s.started;

  if (done_cycles >= s.plan.cycles) {
    ++jobs_completed_;
    sprint_.reset();
    state_ = State::kRecovering;
    cmd.run = false;
    cmd.path = PowerPath::kRegulated;
    return;
  }
  if (elapsed > s.plan.deadline * 1.5) {
    ++jobs_missed_;
    sprint_.reset();
    state_ = State::kRecovering;
    cmd.run = false;
    cmd.path = PowerPath::kRegulated;
    return;
  }

  if (s.bypassed) {
    if (state.v_dd >= model_->processor().min_voltage()) {
      cmd.frequency = model_->processor().max_frequency(state.v_dd);
    }
    return;
  }

  const OperatingPoint& op =
      elapsed < s.plan.phase_time ? s.plan.slow : s.plan.fast;
  cmd.vdd_target = op.vdd;
  cmd.frequency = op.frequency;

  const bool no_headroom = !model_->regulator().supports(state.v_solar, op.vdd);
  const bool sagging = state.v_dd.value() < op.vdd.value() - 0.05 &&
                       elapsed.value() > 1e-4;
  if (no_headroom || sagging) {
    s.bypassed = true;
    cmd.path = PowerPath::kBypass;
  }
}

void EnergyManager::tick_recovering(const SocState& state, SocCommand& cmd) {
  // Large duty cycle: idle the core and let the harvester refill the storage
  // cap (paper Sec. VI-B closing remark).
  cmd.run = false;
  cmd.path = PowerPath::kRegulated;
  if (state.v_solar >= params_.recover_voltage || !queue_empty()) {
    enter_tracking(state, cmd);
  }
}

void EnergyManager::step_hint(const SocState& state, SocStepHint& hint) const {
  hint.event_driven = true;
  switch (state_) {
    case State::kTracking:
      if (!queue_empty()) {
        hint.deadline(state.time.value());  // job pending: decide immediately
        return;
      }
      hint.deadline(next_reassess_.value());
      if (!low_light_bypass_ && params_.mode == ManagerMode::kMaxPerformance) {
        tracker_.step_hint(state, hint);
      }
      // Bypass mode rides the shared node; the engine's own physics bounds
      // (dt cap, comparator levels) limit how stale max_frequency(v_dd) gets.
      break;
    case State::kSprinting: {
      const ActiveSprint& s = *sprint_;
      hint.deadline((s.started + s.plan.deadline * 1.5).value());
      if (!s.bypassed) {
        hint.deadline((s.started + s.plan.phase_time).value());
        hint.deadline(s.started.value() + 1e-4);  // sag check arms after 100 us
        const Seconds elapsed = state.time - s.started;
        const OperatingPoint& op =
            elapsed < s.plan.phase_time ? s.plan.slow : s.plan.fast;
        hint.watch_rail(op.vdd.value() - 0.05);  // rail-sag bypass trigger
      }
      if (state.frequency.value() > 0.0) {
        const double remaining =
            s.plan.cycles - (state.cycles_retired - s.start_cycles);
        if (remaining > 0.0) {
          hint.deadline(state.time.value() + remaining / state.frequency.value());
        }
      }
      break;
    }
    case State::kRecovering:
      hint.watch_solar(params_.recover_voltage.value());
      if (!queue_empty()) hint.deadline(state.time.value());
      break;
  }
}

PeriodicJobController::PeriodicJobController(EnergyManager& manager,
                                             double job_cycles, Seconds period,
                                             Seconds deadline, Seconds phase)
    : manager_(&manager), job_cycles_(job_cycles), period_(period),
      deadline_(deadline), next_submit_(phase) {
  HEMP_REQUIRE(job_cycles >= 0.0, "PeriodicJobController: negative job cycles");
  if (job_cycles > 0.0) {
    HEMP_REQUIRE(period.value() > 0.0 && deadline.value() > 0.0,
                 "PeriodicJobController: jobs need positive period and deadline");
  }
}

void PeriodicJobController::on_start(const SocState& state, SocCommand& cmd) {
  manager_->on_start(state, cmd);
}

void PeriodicJobController::on_tick(const SocState& state, SocCommand& cmd) {
  if (job_cycles_ > 0.0 && state.time >= next_submit_) {
    manager_->submit_at({job_cycles_, deadline_}, state.time);
    ++jobs_submitted_;
    next_submit_ += period_;
  }
  manager_->on_tick(state, cmd);
}

void PeriodicJobController::on_comparator(const ComparatorEvent& event,
                                          const SocState& state,
                                          SocCommand& cmd) {
  manager_->on_comparator(event, state, cmd);
}

void PeriodicJobController::step_hint(const SocState& state, SocStepHint& hint) const {
  manager_->step_hint(state, hint);
  if (job_cycles_ > 0.0) hint.deadline(next_submit_.value());
}

}  // namespace hemp
