// Optimal voltage point for performance (paper Sec. IV, Eqs. 1-4, Fig. 6).
//
// Maximize clock frequency subject to the harvested power budget:
//
//   max f_clk(Vdd)   s.t.   P_up(Vdd, f) <= eta(Vdd) * P_mpp       (regulated)
//   max f_clk(V)     s.t.   P_up(V, f)   <= V * I_solar(V)          (raw cell)
//
// The regulated solve decouples the harvester (held at MPP by the converter)
// from the processor voltage; the unregulated solve ties them to one node.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/system_model.hpp"

namespace hemp {

/// Solution of the performance optimization at one light level.
struct PerfPoint {
  Volts vdd{0.0};
  Hertz frequency{0.0};
  /// Power flowing into the processor at the solution.
  Watts processor_power{0.0};
  /// Power extracted from the solar cell at the solution.
  Watts harvested_power{0.0};
  /// Regulator efficiency at the solution (1.0 for the unregulated case).
  double efficiency = 1.0;
  bool feasible = false;
};

class ModelSurfaces;

class PerformanceOptimizer {
 public:
  explicit PerformanceOptimizer(const SystemModel& model);

  /// Solve against memoized surfaces instead of the exact model: delivered
  /// power, efficiency, MPP, and max-frequency queries use the interpolated
  /// grids (accuracy per SurfaceConfig::tolerance), which makes dense sweeps
  /// orders of magnitude faster.  `surfaces` must outlive the optimizer.
  explicit PerformanceOptimizer(const ModelSurfaces& surfaces);

  /// Unregulated baseline: the cell terminal is the processor rail; the
  /// operating point is the intersection of the solar I-V curve with the
  /// processor's max-speed load line (Fig. 6a).
  [[nodiscard]] PerfPoint unregulated(double g) const;

  /// Holistically regulated optimum: the largest Vdd whose full-speed power
  /// fits inside eta * P_mpp (Fig. 6b).
  [[nodiscard]] PerfPoint regulated(double g) const;

  /// Speedup and extra power of regulated over unregulated at light level g
  /// (the paper's "+31% power, +18% speed" numbers).
  struct Comparison {
    PerfPoint unregulated;
    PerfPoint regulated;
    double power_gain = 0.0;  ///< regulated/unregulated power - 1 (unit-lint: ratio)
    double speed_gain = 0.0;  ///< regulated/unregulated frequency - 1
  };
  [[nodiscard]] Comparison compare(double g) const;

 private:
  [[nodiscard]] Watts delivered(Volts vdd, double g) const;
  [[nodiscard]] double efficiency(Volts vdd, double g) const;
  [[nodiscard]] MaxPowerPoint mpp(double g) const;
  [[nodiscard]] Hertz max_frequency(Volts vdd) const;

  const SystemModel* model_;
  const ModelSurfaces* surfaces_ = nullptr;
};

}  // namespace hemp
