#include "core/system_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace hemp {

SystemModel::SystemModel(const PvCell& cell, const Regulator& regulator,
                         const Processor& processor)
    : cell_(&cell), regulator_(&regulator), processor_(&processor) {}

MaxPowerPoint SystemModel::mpp(double g) const {
  // Quantize the key and solve at the quantized irradiance: the cached point
  // is then a pure function of the key, so concurrent sweeps get identical
  // results no matter which thread populated the entry first.
  const auto key = static_cast<std::int64_t>(std::llround(g / kMppCacheQuantum));
  const double g_q = static_cast<double>(key) * kMppCacheQuantum;
  {
    const std::lock_guard<std::mutex> lock(mpp_mutex_);
    const auto it = mpp_cache_.find(key);
    if (it != mpp_cache_.end()) return it->second;
  }
  const MaxPowerPoint point = find_mpp(*cell_, g_q);
  {
    const std::lock_guard<std::mutex> lock(mpp_mutex_);
    if (mpp_cache_.size() >= kMppCacheCapacity) mpp_cache_.clear();
    mpp_cache_.emplace(key, point);
  }
  return point;
}

Watts SystemModel::delivered_power(Volts vdd, double g) const {
  const MaxPowerPoint point = mpp(g);
  if (point.power.value() <= 0.0) return Watts(0.0);
  if (!regulator_->supports(point.voltage, vdd)) return Watts(0.0);

  // Self-consistent load: pout = eta(pout) * p_mpp.  eta rises with load for
  // these converters (fixed losses amortize), so iterate to the fixed point,
  // starting from the rated-load efficiency and capping at the rating.
  const double p_mpp = point.power.value();
  double pout = std::min(p_mpp, regulator_->rated_load().value());
  for (int i = 0; i < 64; ++i) {
    const double eta =
        regulator_->efficiency(point.voltage, vdd, Watts(std::max(pout, 1e-9)));
    const double next = std::min(eta * p_mpp, regulator_->rated_load().value());
    if (std::fabs(next - pout) < 1e-12) return Watts(next);
    pout = next;
  }
  return Watts(pout);
}

Watts SystemModel::unregulated_power(Volts vdd, double g) const {
  return cell_->power(vdd, g);
}

double SystemModel::efficiency_at(Volts vdd, double g) const {
  const MaxPowerPoint point = mpp(g);
  const Watts pout = delivered_power(vdd, g);
  if (pout.value() <= 0.0) return 0.0;
  return regulator_->efficiency(point.voltage, vdd, pout);
}

}  // namespace hemp
