// Memoized model surfaces: the optimizer-hot SystemModel queries precomputed
// onto quantized grids with bilinear/linear interpolation.
//
// Every figure sweep and design-space exploration re-asks the same four
// questions thousands of times — mpp(g), delivered_power(vdd, g),
// efficiency_at(vdd, g), max_frequency(vdd) — each one an iterative solve.
// ModelSurfaces pays the solve cost once per grid node at construction and
// answers queries with one table lookup, turning an O(solver) call into a
// handful of flops.  Accuracy is bounded by the grid pitch; the default
// 97 x 97 grid keeps interpolation error well under 1% on the smooth parts
// of the surfaces (the regulator-envelope cliff in delivered_power smears
// over at most one voltage cell, ~6 mV at defaults).
//
// Queries outside the gridded rectangle fall back to the exact SystemModel
// evaluation, so a surface never widens the model's domain error.
#pragma once

#include "common/interpolation.hpp"
#include "core/system_model.hpp"

namespace hemp {

struct SurfaceConfig {
  /// Grid resolution; higher is more accurate and slower to build.
  int voltage_points = 97;
  int irradiance_points = 97;
  /// Irradiance span covered by the grid (fraction of full sun).  Queries
  /// outside it use the exact model.
  double irradiance_min = 0.01;
  double irradiance_max = 1.25;
  /// Accepted relative interpolation error on smooth surface regions.  Used
  /// by validation (and documented here as the accuracy contract callers can
  /// assume away from the regulator-envelope boundary and ratio-switch
  /// kinks, where the error is bounded by the grid pitch instead).
  double tolerance = 0.02;
  /// Spot-check the delivered-power surface against the exact model at cell
  /// midpoints during construction; throws ModelError when more than
  /// `kMaxOutlierFraction` of the smooth-cell midpoints exceed `tolerance`
  /// (a few cells always straddle a kink line — see ModelSurfaces docs).
  bool validate = false;

  /// Fraction of smooth-cell midpoints allowed beyond `tolerance` before
  /// validation fails: kink-crossing cells are an O(grid pitch) population.
  static constexpr double kMaxOutlierFraction = 0.05;

  void check() const;
};

class ModelSurfaces {
 public:
  /// Builds all four surfaces from `model`, which must outlive this object.
  explicit ModelSurfaces(const SystemModel& model, SurfaceConfig config = {});

  [[nodiscard]] const SystemModel& model() const { return *model_; }
  [[nodiscard]] const SurfaceConfig& config() const { return config_; }

  /// Interpolated MPP at irradiance `g` (voltage and power surfaces; the
  /// current is reconstructed as power / voltage).
  [[nodiscard]] MaxPowerPoint mpp(double g) const;

  /// Interpolated SystemModel::delivered_power.
  [[nodiscard]] Watts delivered_power(Volts vdd, double g) const;

  /// Interpolated SystemModel::efficiency_at.
  [[nodiscard]] double efficiency_at(Volts vdd, double g) const;

  /// Interpolated Processor::max_frequency over the operating envelope.
  [[nodiscard]] Hertz max_frequency(Volts vdd) const;

  /// Worst relative delivered-power error observed by validation on smooth
  /// cells (0 when `config.validate` was off).  The tail above
  /// `config.tolerance` comes from cells straddling a ratio-switch kink.
  [[nodiscard]] double validation_error() const { return validation_error_; }

  /// Fraction of validated midpoints beyond `config.tolerance`.
  [[nodiscard]] double validation_outlier_fraction() const {
    return validation_outlier_fraction_;
  }

 private:
  [[nodiscard]] bool in_grid(double vdd, double g) const;

  const SystemModel* model_;
  SurfaceConfig config_;
  PiecewiseLinear mpp_power_;    // over g
  PiecewiseLinear mpp_voltage_;  // over g
  PiecewiseLinear fmax_;         // over vdd
  BilinearGrid delivered_;       // over (vdd, g)
  BilinearGrid efficiency_;      // over (vdd, g)
  double validation_error_ = 0.0;
  double validation_outlier_fraction_ = 0.0;
};

}  // namespace hemp
