#include "core/mpp_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/annotations.hpp"
#include "common/error.hpp"

namespace hemp {

Watts estimate_input_power(Watts p_draw, Farads c, Volts v1, Volts v2, Seconds t) {
  HEMP_CHECK_RANGE(v1 > v2, "estimate_input_power: V1 must exceed V2");
  HEMP_CHECK_RANGE(t.value() > 0.0, "estimate_input_power: non-positive interval");
  HEMP_CHECK_RANGE(c.value() > 0.0, "estimate_input_power: non-positive capacitance");
  const double dv2 = v1.value() * v1.value() - v2.value() * v2.value();
  const double discharge = 0.5 * c.value() * dv2 / t.value();
  return Watts(std::max(p_draw.value() - discharge, 0.0));
}

MppLut::MppLut(const PvCell& cell, Volts measure_voltage, double g_min, double g_max,
               int samples)
    : measure_voltage_(measure_voltage) {
  HEMP_REQUIRE(samples >= 4, "MppLut: need >= 4 samples");
  HEMP_REQUIRE(0.0 < g_min && g_min < g_max, "MppLut: bad irradiance range");
  std::vector<double> p, vmpp, gs, pmpp;
  double last_p = -1.0;
  for (int i = 0; i < samples; ++i) {
    const double g = g_min + (g_max - g_min) * i / (samples - 1);
    const double p_meas = cell.power(measure_voltage_, g).value();
    if (p_meas <= last_p) continue;  // keep the power axis strictly increasing
    const MaxPowerPoint point = find_mpp(cell, g);
    p.push_back(p_meas);
    vmpp.push_back(point.voltage.value());
    gs.push_back(g);
    pmpp.push_back(point.power.value());
    last_p = p_meas;
  }
  HEMP_REQUIRE(p.size() >= 2, "MppLut: cell power not increasing with irradiance");
  power_to_vmpp_ = PiecewiseLinear(p, vmpp);
  power_to_g_ = PiecewiseLinear(p, gs);
  power_to_pmpp_ = PiecewiseLinear(p, pmpp);
}

Volts MppLut::mpp_voltage_for(Watts p_in) const {
  return Volts(power_to_vmpp_(p_in.value()));
}

double MppLut::irradiance_for(Watts p_in) const { return power_to_g_(p_in.value()); }

Watts MppLut::mpp_power_for(Watts p_in) const {
  return Watts(power_to_pmpp_(p_in.value()));
}

void MppTrackerParams::validate() const {
  HEMP_REQUIRE(control_period.value() > 0.0, "MppTracker: bad control period");
  HEMP_REQUIRE(deadband.value() > 0.0, "MppTracker: bad deadband");
  HEMP_REQUIRE(v_high > v_low, "MppTracker: v_high must exceed v_low");
  HEMP_REQUIRE(solar_capacitance.value() > 0.0, "MppTracker: bad capacitance");
  HEMP_REQUIRE(dvfs_steps >= 4, "MppTracker: need >= 4 DVFS steps");
}

namespace {

DvfsLadder make_ladder(const Processor& proc, Volts ceiling, int steps) {
  const double lo = proc.min_voltage().value();
  const double hi = std::min(ceiling.value(), proc.max_voltage().value());
  HEMP_REQUIRE(hi > lo, "MppTracker: empty DVFS range");
  std::vector<OperatingPoint> levels;
  levels.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const Volts v(lo + (hi - lo) * i / (steps - 1));
    levels.push_back({v, proc.max_frequency(v)});
  }
  return DvfsLadder(std::move(levels));
}

}  // namespace

MppTrackingController::MppTrackingController(const SystemModel& model,
                                             const MppTrackerParams& params)
    : model_(&model), params_(params),
      lut_(model.cell(), Volts(0.5 * (params.v_high.value() + params.v_low.value()))),
      ladder_(make_ladder(model.processor(), params.vdd_ceiling, params.dvfs_steps)),
      timer_(params.v_high, params.v_low) {
  params_.validate();
  v_mpp_full_sun_ = model.mpp(1.0).voltage;
}

void MppTrackingController::on_start(const SocState& state, SocCommand& cmd) {
  // Cold start: assume strong light (track toward the full-sun MPP) and begin
  // at a low ladder level; the proportional loop climbs as the node proves it
  // can hold the target.  The first dimming transient re-seeds via Eq. 7.
  v_target_ = v_mpp_full_sun_;
  timer_.reset(state.v_solar);
  level_ = 0;
  cmd.path = PowerPath::kRegulated;
  cmd.run = true;
  step(0, cmd);
}

void MppTrackingController::step(int delta, SocCommand& cmd) {
  const long next = static_cast<long>(level_) + delta;
  level_ = static_cast<std::size_t>(
      std::clamp<long>(next, 0, static_cast<long>(ladder_.size()) - 1));
  const OperatingPoint& op = ladder_.at(level_);
  cmd.vdd_target = op.vdd;
  cmd.frequency = op.frequency;
}

void MppTrackingController::seed_for_budget(Watts p_budget, const SocState& state,
                                            SocCommand& cmd) {
  const Processor& proc = model_->processor();
  const Regulator& reg = model_->regulator();
  // Highest ladder level whose source-side draw fits the budget.
  std::size_t chosen = 0;
  for (std::size_t i = 0; i < ladder_.size(); ++i) {
    const OperatingPoint& op = ladder_.at(i);
    if (!reg.supports(state.v_solar, op.vdd)) continue;
    const Watts pout = proc.max_power(op.vdd);
    const double eta = reg.efficiency(state.v_solar, op.vdd, pout);
    if (eta <= 0.0) continue;
    if (pout.value() / eta <= p_budget.value()) chosen = i;
  }
  level_ = chosen;
  const OperatingPoint& op = ladder_.at(level_);
  cmd.vdd_target = op.vdd;
  cmd.frequency = op.frequency;
}

HEMP_HOT void MppTrackingController::on_tick(const SocState& state, SocCommand& cmd) {
  // --- Eq. 7 transient estimator. --------------------------------------------
  if (auto fall = timer_.update(state.v_solar, state.time);
      fall && fall->value() > 0.0) {
    const Regulator& reg = model_->regulator();
    double p_draw = state.p_processor.value();
    if (reg.supports(state.v_solar, cmd.vdd_target) && p_draw > 0.0) {
      const double eta = reg.efficiency(state.v_solar, cmd.vdd_target,
                                        Watts(p_draw));
      if (eta > 0.0) p_draw /= eta;
    }
    const Watts p_in = estimate_input_power(Watts(p_draw), params_.solar_capacitance,
                                            params_.v_high, params_.v_low, *fall);
    last_estimate_ = p_in;
    v_target_ = lut_.mpp_voltage_for(p_in);
    seed_for_budget(lut_.mpp_power_for(p_in), state, cmd);
    ++retargets_;
    next_control_ = state.time + params_.control_period;
    return;
  }

  // --- Steady-state proportional ladder stepping. ----------------------------
  // Hold DVFS while a threshold-time measurement is in flight: Eq. 7 assumes
  // a constant load across the V1 -> V2 window.
  if (timer_.armed()) return;
  if (state.time < next_control_) return;
  next_control_ = state.time + params_.control_period;
  const double err = state.v_solar.value() - v_target_.value();
  const double dv = state.v_solar.value() - prev_v_solar_.value();
  prev_v_solar_ = state.v_solar;
  const double slew = params_.slew_tolerance.value();
  if (err > params_.deadband.value() && dv > -slew) {
    step(+1, cmd);  // node above MPP and not already falling: draw more
  } else if (err < -params_.deadband.value() && dv < slew) {
    step(-1, cmd);  // node below MPP and not already recovering: back off
  }
}

void MppTrackingController::step_hint(const SocState& state, SocStepHint& hint) const {
  (void)state;
  hint.event_driven = true;
  // Eq. 7 threshold timer: the node must not cross either window edge
  // unobserved, in either direction.
  hint.watch_solar(params_.v_high.value());
  hint.watch_solar(params_.v_low.value());
  // While a fall-time measurement is in flight DVFS is held, so the watched
  // edges are the only wake-ups; otherwise the proportional loop runs on its
  // control period.
  if (!timer_.armed()) hint.deadline(next_control_.value());
}

}  // namespace hemp
