#include "core/sprint_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"
#include "core/model_surfaces.hpp"

namespace hemp {

SprintScheduler::SprintScheduler(const SystemModel& model) : model_(&model) {}

SprintScheduler::SprintScheduler(const ModelSurfaces& surfaces)
    : model_(&surfaces.model()), surfaces_(&surfaces) {}

MaxPowerPoint SprintScheduler::mpp(double g) const {
  return surfaces_ ? surfaces_->mpp(g) : model_->mpp(g);
}

Joules SprintScheduler::required_source_energy(double cycles, Seconds t,
                                               double g) const {
  HEMP_CHECK_RANGE(cycles > 0.0, "SprintScheduler: non-positive cycle count");
  HEMP_CHECK_RANGE(t.value() > 0.0, "SprintScheduler: non-positive time");
  const Processor& proc = model_->processor();
  const Hertz f_needed(cycles / t.value());
  const Hertz f_ceiling = proc.max_frequency(proc.max_voltage());
  if (f_needed > f_ceiling) {
    return Joules(std::numeric_limits<double>::infinity());
  }
  const Volts vdd = proc.speed().voltage_for_frequency(f_needed);
  const Joules rail = Joules(proc.energy_per_cycle({vdd, f_needed}).value() * cycles);
  // Through the regulator from the MPP input rail.
  const MaxPowerPoint point = mpp(g);
  const Regulator& reg = model_->regulator();
  if (!reg.supports(point.voltage, vdd)) {
    return Joules(std::numeric_limits<double>::infinity());
  }
  const Watts load = proc.power_model().total_power(vdd, f_needed);
  const double eta = reg.efficiency(point.voltage, vdd, load);
  if (eta <= 0.0) return Joules(std::numeric_limits<double>::infinity());
  return Joules(rail.value() / eta);
}

Joules SprintScheduler::available_energy(Seconds t, double g,
                                         Joules usable_cap_energy) const {
  HEMP_CHECK_RANGE(t.value() >= 0.0, "SprintScheduler: negative time");
  HEMP_CHECK_RANGE(usable_cap_energy.value() >= 0.0,
                   "SprintScheduler: negative capacitor energy");
  return mpp(g).power * t + usable_cap_energy;
}

std::optional<Seconds> SprintScheduler::min_completion_time(
    double cycles, double g, Joules usable_cap_energy, Seconds t_max) const {
  auto gap = [&](double t) {
    const double need = required_source_energy(cycles, Seconds(t), g).value();
    if (!std::isfinite(need)) return -1.0;
    return available_energy(Seconds(t), g, usable_cap_energy).value() - need;
  };
  // The feasible band is bounded on both sides: too-fast completion exceeds
  // the frequency ceiling, too-slow completion pushes Vdd below the
  // regulator's output range (need reads as infinite at both ends).  Scan up
  // from the frequency-limited lower bound for the first feasible time, then
  // bisect across the sign change.
  const Hertz f_ceiling =
      model_->processor().max_frequency(model_->processor().max_voltage());
  const double t_min = cycles / f_ceiling.value();
  if (t_min > t_max.value()) return std::nullopt;
  if (gap(t_min) >= 0.0) return Seconds(t_min);
  constexpr int kGrid = 256;
  double prev = t_min;
  for (int i = 1; i <= kGrid; ++i) {
    const double t = t_min + (t_max.value() - t_min) * i / kGrid;
    if (gap(t) >= 0.0) {
      return Seconds(numeric::bisect_root(gap, prev, t, {.x_tol = 1e-9}));
    }
    prev = t;
  }
  return std::nullopt;
}

SprintPlan SprintScheduler::plan(double cycles, Seconds deadline, double s) const {
  HEMP_CHECK_RANGE(cycles > 0.0, "SprintScheduler: non-positive cycle count");
  HEMP_CHECK_RANGE(deadline.value() > 0.0, "SprintScheduler: non-positive deadline");
  HEMP_CHECK_RANGE(s >= 0.0 && s <= 0.5, "SprintScheduler: sprint factor in [0, 0.5]");
  const Processor& proc = model_->processor();

  SprintPlan p;
  p.cycles = cycles;
  p.deadline = deadline;
  p.sprint_factor = s;
  p.phase_time = deadline / 2.0;

  const Hertz f_nom(cycles / deadline.value());
  const Hertz f_slow(f_nom.value() * (1.0 - s));
  const Hertz f_fast(f_nom.value() * (1.0 + s));
  const Hertz f_ceiling = proc.max_frequency(proc.max_voltage());
  if (f_fast > f_ceiling) return p;  // cannot sprint that hard
  const Hertz f_floor = proc.max_frequency(proc.min_voltage());
  if (f_slow.value() <= 0.0) return p;

  auto op_for = [&](Hertz f) -> OperatingPoint {
    if (f <= f_floor) return {proc.min_voltage(), f};
    const Volts v = proc.speed().voltage_for_frequency(f);
    return {v, f};
  };
  p.nominal = op_for(f_nom);
  p.slow = op_for(f_slow);
  p.fast = op_for(f_fast);
  p.feasible = true;
  return p;
}

SprintScheduler::GainEstimate SprintScheduler::evaluate_gain(const SprintPlan& plan,
                                                             double g,
                                                             Farads c_solar,
                                                             Volts v_start) const {
  HEMP_REQUIRE(plan.feasible, "SprintScheduler: evaluating an infeasible plan");
  const PvCell& cell = model_->cell();
  const Processor& proc = model_->processor();
  const Regulator& reg = model_->regulator();

  // Paper Sec. VI-B assumption: "in the case of switching regulator, [it] can
  // be assumed to have relatively constant efficiency over the operation
  // range" — so the draw follows the speed profile at a fixed eta, evaluated
  // at the nominal operating point, and continues while the node has charge.
  double eta_nom = 1.0;
  if (reg.supports(v_start, plan.nominal.vdd)) {
    const Watts pout_nom =
        proc.power_model().total_power(plan.nominal.vdd, plan.nominal.frequency);
    const double eta = reg.efficiency(v_start, plan.nominal.vdd, pout_nom);
    if (eta > 0.0) eta_nom = eta;
  }

  // Integrate the solar node under a speed profile; the regulator holds the
  // rail so the node only sees the source-side draw.
  auto integrate = [&](const OperatingPoint& first, const OperatingPoint& second)
      -> std::pair<Joules, Volts> {
    const double dt = plan.deadline.value() / 4000.0;
    double v = v_start.value();
    double harvested = 0.0;
    for (double t = 0.0; t < plan.deadline.value(); t += dt) {
      const OperatingPoint& op = t < plan.phase_time.value() ? first : second;
      const double p_harv = cell.power(Volts(v), g).value();
      double p_draw = 0.0;
      if (v > 0.05) {
        const Watts pout = proc.power_model().total_power(op.vdd, op.frequency);
        p_draw = pout.value() / eta_nom;
      }
      harvested += p_harv * dt;
      const double v2 = v * v + 2.0 * (p_harv - p_draw) * dt / c_solar.value();
      v = std::sqrt(std::max(v2, 0.0));
    }
    return {Joules(harvested), Volts(v)};
  };

  GainEstimate out;
  const auto constant = integrate(plan.nominal, plan.nominal);
  const auto sprint = integrate(plan.slow, plan.fast);
  out.solar_constant = constant.first;
  out.solar_sprint = sprint.first;
  out.end_voltage_constant = constant.second;
  out.end_voltage_sprint = sprint.second;
  if (out.solar_constant.value() > 0.0) {
    out.extra_solar_fraction = out.solar_sprint / out.solar_constant - 1.0;
  }
  return out;
}

SprintController::SprintController(const SystemModel& model, SprintPlan plan,
                                   SprintControllerParams params, bool enable_bypass)
    : model_(&model), plan_(std::move(plan)), params_(params),
      enable_bypass_(enable_bypass) {
  HEMP_REQUIRE(plan_.feasible, "SprintController: plan is infeasible");
}

void SprintController::on_start(const SocState& state, SocCommand& cmd) {
  (void)state;
  cmd.path = PowerPath::kRegulated;
  cmd.vdd_target = plan_.slow.vdd;
  cmd.frequency = plan_.slow.frequency;
  cmd.run = true;
}

void SprintController::on_tick(const SocState& state, SocCommand& cmd) {
  if (done_) {
    cmd.run = false;
    return;
  }
  if (state.cycles_retired >= plan_.cycles) {
    done_ = true;
    done_at_ = state.time;
    cmd.run = false;
    return;
  }

  if (bypassed_) {
    // Ride the rail: run as fast as the sagging supply allows.
    if (state.v_dd >= model_->processor().min_voltage()) {
      cmd.frequency = model_->processor().max_frequency(state.v_dd);
    }
    return;
  }

  // Phase schedule.
  const OperatingPoint& op =
      state.time < plan_.phase_time ? plan_.slow : plan_.fast;
  cmd.vdd_target = op.vdd;
  cmd.frequency = op.frequency;

  // Bypass decision: the regulator has lost input headroom, or the rail sags.
  if (enable_bypass_) {
    const bool no_headroom =
        !model_->regulator().supports(state.v_solar, cmd.vdd_target);
    const bool sagging =
        state.v_dd.value() < cmd.vdd_target.value() - params_.sag_margin.value() &&
        state.time.value() > 10.0 * 1e-6;  // ignore the startup transient
    if (no_headroom || sagging) {
      bypassed_ = true;
      bypass_at_ = state.time;
      cmd.path = PowerPath::kBypass;
    }
  }
}

bool SprintController::finished(const SocState& state) {
  if (done_) return true;
  if (bypassed_) {
    // Dead when the rail fell below operating range and the solar node has
    // nothing left to push into it.
    const double vmin = model_->processor().min_voltage().value();
    if (state.v_dd.value() < vmin - params_.give_up_margin.value() &&
        state.v_solar.value() <
            state.v_dd.value() + params_.give_up_margin.value()) {
      return true;
    }
  }
  return false;
}

}  // namespace hemp
