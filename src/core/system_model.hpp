// Holistic system model: harvester + regulator + processor viewed as one
// optimization target (the paper's central idea, Sec. I contribution 1).
//
// Everything the optimizers need reduces to two curves:
//   * delivered_power(Vdd, G): how much power reaches the rail at Vdd when the
//     regulator holds the solar cell at its maximum power point — found by a
//     self-consistent solve because regulator efficiency depends on load;
//   * Processor::max_power(Vdd): what the core consumes at full speed.
#pragma once

#include <map>

#include "common/units.hpp"
#include "harvester/iv_curve.hpp"
#include "harvester/pv_cell.hpp"
#include "processor/processor.hpp"
#include "regulator/regulator.hpp"

namespace hemp {

class SystemModel {
 public:
  /// Non-owning view over the three subsystems; they must outlive the model.
  SystemModel(const PvCell& cell, const Regulator& regulator,
              const Processor& processor);

  [[nodiscard]] const PvCell& cell() const { return *cell_; }
  [[nodiscard]] const Regulator& regulator() const { return *regulator_; }
  [[nodiscard]] const Processor& processor() const { return *processor_; }

  /// MPP of the harvester at irradiance `g`.  Results are memoized per exact
  /// irradiance value (runtime controllers query the same handful of levels
  /// every tick).  Not thread-safe.
  [[nodiscard]] MaxPowerPoint mpp(double g) const;

  /// Power delivered to the rail at `vdd` when the converter input sits at
  /// the harvester MPP and all harvested power flows through the regulator.
  /// Solves  pout = eta(v_mpp, vdd, pout) * p_mpp  for pout; returns 0 when
  /// the regulator cannot regulate (v_mpp, vdd).
  [[nodiscard]] Watts delivered_power(Volts vdd, double g) const;

  /// Power available at `vdd` without any regulator: the raw solar cell
  /// output with its terminal tied to the rail (Fig. 6a intersection logic).
  [[nodiscard]] Watts unregulated_power(Volts vdd, double g) const;

  /// Regulator efficiency at the operating point implied by delivered_power.
  [[nodiscard]] double efficiency_at(Volts vdd, double g) const;

 private:
  const PvCell* cell_;
  const Regulator* regulator_;
  const Processor* processor_;
  mutable std::map<double, MaxPowerPoint> mpp_cache_;
};

}  // namespace hemp
