// Holistic system model: harvester + regulator + processor viewed as one
// optimization target (the paper's central idea, Sec. I contribution 1).
//
// Everything the optimizers need reduces to two curves:
//   * delivered_power(Vdd, G): how much power reaches the rail at Vdd when the
//     regulator holds the solar cell at its maximum power point — found by a
//     self-consistent solve because regulator efficiency depends on load;
//   * Processor::max_power(Vdd): what the core consumes at full speed.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "common/units.hpp"
#include "harvester/iv_curve.hpp"
#include "harvester/pv_cell.hpp"
#include "processor/processor.hpp"
#include "regulator/regulator.hpp"

namespace hemp {

class SystemModel {
 public:
  /// Non-owning view over the three subsystems; they must outlive the model.
  SystemModel(const PvCell& cell, const Regulator& regulator,
              const Processor& processor);

  [[nodiscard]] const PvCell& cell() const { return *cell_; }
  [[nodiscard]] const Regulator& regulator() const { return *regulator_; }
  [[nodiscard]] const Processor& processor() const { return *processor_; }

  /// MPP of the harvester at irradiance `g`.  Results are memoized on
  /// irradiance quantized to `kMppCacheQuantum` steps: the solve runs at the
  /// quantized irradiance, so two queries within half a quantum of each other
  /// return the same point regardless of query order.  The induced error is
  /// below ~1e-6 relative in MPP power (the cell curves are smooth in g),
  /// far under the model's physical fidelity.  When the cache reaches
  /// `kMppCacheCapacity` entries it is cleared and keeps caching rather than
  /// silently degrading to solve-per-call.  Thread-safe (mutex-guarded).
  [[nodiscard]] MaxPowerPoint mpp(double g) const;

  /// Irradiance quantization step of the MPP cache (fraction of full sun).
  static constexpr double kMppCacheQuantum = 1e-6;
  /// Entry cap; reaching it flushes the cache instead of disabling it.
  static constexpr std::size_t kMppCacheCapacity = 4096;

  /// Power delivered to the rail at `vdd` when the converter input sits at
  /// the harvester MPP and all harvested power flows through the regulator.
  /// Solves  pout = eta(v_mpp, vdd, pout) * p_mpp  for pout; returns 0 when
  /// the regulator cannot regulate (v_mpp, vdd).
  [[nodiscard]] Watts delivered_power(Volts vdd, double g) const;

  /// Power available at `vdd` without any regulator: the raw solar cell
  /// output with its terminal tied to the rail (Fig. 6a intersection logic).
  [[nodiscard]] Watts unregulated_power(Volts vdd, double g) const;

  /// Regulator efficiency at the operating point implied by delivered_power.
  [[nodiscard]] double efficiency_at(Volts vdd, double g) const;

 private:
  const PvCell* cell_;
  const Regulator* regulator_;
  const Processor* processor_;
  mutable std::mutex mpp_mutex_;
  mutable std::map<std::int64_t, MaxPowerPoint> mpp_cache_;
};

}  // namespace hemp
