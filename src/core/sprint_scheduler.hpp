// Deadline-constrained "sprinting" operation (paper Sec. VI-B, Eqs. 8-13,
// Figs. 9 and 11b).
//
// When a job must finish by a deadline the core may need more power than the
// harvester supplies; the storage capacitor bridges the gap.  The scheduler:
//
//   * computes the source energy a job needs as a function of completion time
//     (Eq. 10: faster completion -> higher Vdd -> quadratically more energy);
//   * computes the energy available from solar + capacitor over that time
//     (Eq. 11); their intersection is the fastest feasible completion (Fig. 9a);
//   * plans a two-phase "sprint" profile — run slower than nominal for the
//     first half, faster for the second (sprint factor s) — which keeps the
//     solar node at a higher, more productive voltage early and harvests more
//     total energy (Eqs. 12-13);
//   * at runtime, bypasses the regulator once it can no longer sustain the
//     rail, letting the cell charge the rail directly and extending operation
//     (the paper measures +3 ms / ~20% extension, ~10% extra solar energy).
#pragma once

#include <optional>

#include "core/system_model.hpp"
#include "sim/soc_system.hpp"

namespace hemp {

struct SprintPlan {
  OperatingPoint nominal;  ///< constant-speed point meeting the deadline
  OperatingPoint slow;     ///< phase 1: (1 - s) of nominal speed
  OperatingPoint fast;     ///< phase 2: (1 + s) of nominal speed
  Seconds phase_time{0.0}; ///< duration of each phase (deadline / 2)
  double sprint_factor = 0.0;
  double cycles = 0.0;
  Seconds deadline{0.0};
  bool feasible = false;
};

class ModelSurfaces;

class SprintScheduler {
 public:
  explicit SprintScheduler(const SystemModel& model);

  /// Schedule with memoized surfaces: the MPP lookups inside the Eq. 10/11
  /// energy curves come from the interpolated grids, which makes the
  /// completion-time scan (256 grid probes + bisection, each querying the
  /// MPP) cheap enough for dense (cycles, deadline, light) sweeps.
  explicit SprintScheduler(const ModelSurfaces& surfaces);

  /// Eq. 10: source-side energy to retire `cycles` in exactly `t` at constant
  /// speed (Vdd chosen so f_max(Vdd) = cycles / t), through the regulator.
  [[nodiscard]] Joules required_source_energy(double cycles, Seconds t,
                                              double g) const;

  /// Eq. 11: energy the source offers within `t`: harvested at MPP plus the
  /// usable part of the capacitor's stored energy.
  [[nodiscard]] Joules available_energy(Seconds t, double g,
                                        Joules usable_cap_energy) const;

  /// Fastest feasible completion time: intersection of the two curves above
  /// (Fig. 9a).  nullopt when the job is infeasible within `t_max`.
  [[nodiscard]] std::optional<Seconds> min_completion_time(
      double cycles, double g, Joules usable_cap_energy,
      Seconds t_max = Seconds(1.0)) const;

  /// Build a two-phase sprint plan for `cycles` by `deadline` with sprint
  /// factor `s` in [0, 0.5].  Infeasible (not .feasible) when even the fast
  /// phase exceeds the processor envelope.
  [[nodiscard]] SprintPlan plan(double cycles, Seconds deadline, double s) const;

  /// Semi-analytic evaluation of Eqs. 12-13: integrate the solar node under
  /// the constant-speed and sprint profiles and compare harvested energy.
  struct GainEstimate {
    Joules solar_constant{0.0};  ///< harvested under constant speed
    Joules solar_sprint{0.0};    ///< harvested under the sprint profile
    double extra_solar_fraction = 0.0;  ///< (sprint - constant) / constant
    Volts end_voltage_constant{0.0};
    Volts end_voltage_sprint{0.0};
  };
  [[nodiscard]] GainEstimate evaluate_gain(const SprintPlan& plan, double g,
                                           Farads c_solar, Volts v_start) const;

 private:
  [[nodiscard]] MaxPowerPoint mpp(double g) const;

  const SystemModel* model_;
  const ModelSurfaces* surfaces_ = nullptr;
};

struct SprintControllerParams {
  /// Engage the bypass when the regulator loses input headroom or the rail
  /// sags this far below its target.
  Volts sag_margin{0.05};
  /// Consider the run dead when (in bypass) the rail cannot reach the
  /// processor's minimum voltage anymore.
  Volts give_up_margin{0.01};
};

/// Executes a SprintPlan against the transient SoC: slow phase, fast phase,
/// then regulator bypass at the tail (paper Figs. 9b / 11b).
class SprintController : public SocController {
 public:
  SprintController(const SystemModel& model, SprintPlan plan,
                   SprintControllerParams params = {},
                   bool enable_bypass = true);

  void on_start(const SocState& state, SocCommand& cmd) override;
  void on_tick(const SocState& state, SocCommand& cmd) override;
  bool finished(const SocState& state) override;

  [[nodiscard]] bool bypass_engaged() const { return bypassed_; }
  [[nodiscard]] std::optional<Seconds> bypass_time() const { return bypass_at_; }
  [[nodiscard]] bool job_done() const { return done_; }
  [[nodiscard]] std::optional<Seconds> completion_time() const { return done_at_; }

 private:
  const SystemModel* model_;
  SprintPlan plan_;
  SprintControllerParams params_;
  bool enable_bypass_;
  bool bypassed_ = false;
  bool done_ = false;
  std::optional<Seconds> bypass_at_;
  std::optional<Seconds> done_at_;
};

}  // namespace hemp
