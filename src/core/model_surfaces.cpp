#include "core/model_surfaces.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace hemp {
namespace {

std::vector<double> uniform_axis(double lo, double hi, int n) {
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = lo + (hi - lo) * i / (n - 1);
  }
  return out;
}

}  // namespace

void SurfaceConfig::check() const {
  HEMP_REQUIRE(voltage_points >= 2 && irradiance_points >= 2,
               "SurfaceConfig: need at least 2 grid points per axis");
  HEMP_REQUIRE(0.0 < irradiance_min && irradiance_min < irradiance_max,
               "SurfaceConfig: bad irradiance span");
  HEMP_REQUIRE(tolerance > 0.0, "SurfaceConfig: tolerance must be positive");
}

ModelSurfaces::ModelSurfaces(const SystemModel& model, SurfaceConfig config)
    : model_(&model), config_(config) {
  config_.check();
  const Processor& proc = model.processor();
  const double v_lo = proc.min_voltage().value();
  const double v_hi = proc.max_voltage().value();
  const std::vector<double> vs = uniform_axis(v_lo, v_hi, config_.voltage_points);
  const std::vector<double> gs =
      uniform_axis(config_.irradiance_min, config_.irradiance_max,
                   config_.irradiance_points);

  // 1-D surfaces over irradiance: the harvester MPP locus.
  std::vector<double> p_mpp(gs.size());
  std::vector<double> v_mpp(gs.size());
  for (std::size_t j = 0; j < gs.size(); ++j) {
    const MaxPowerPoint point = model.mpp(gs[j]);
    p_mpp[j] = point.power.value();
    v_mpp[j] = point.voltage.value();
  }
  mpp_power_ = PiecewiseLinear(gs, p_mpp);
  mpp_voltage_ = PiecewiseLinear(gs, v_mpp);

  // 1-D surface over voltage: the processor speed envelope.
  std::vector<double> f_max(vs.size());
  for (std::size_t i = 0; i < vs.size(); ++i) {
    f_max[i] = proc.max_frequency(Volts(vs[i])).value();
  }
  fmax_ = PiecewiseLinear(vs, f_max);

  // 2-D surfaces over (vdd, g): the regulator transfer.
  std::vector<double> delivered(vs.size() * gs.size());
  std::vector<double> eta(vs.size() * gs.size());
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t j = 0; j < gs.size(); ++j) {
      const Volts vdd(vs[i]);
      delivered[i * gs.size() + j] = model.delivered_power(vdd, gs[j]).value();
      eta[i * gs.size() + j] = model.efficiency_at(vdd, gs[j]);
    }
  }
  delivered_ = BilinearGrid(vs, gs, std::move(delivered));
  efficiency_ = BilinearGrid(vs, gs, std::move(eta));

  if (config_.validate) {
    // Spot-check the worst case of bilinear interpolation — cell midpoints —
    // against the exact model.  Cells touching the regulator envelope (a
    // near-zero corner) or spanning a ratio-switch cliff (corner spread over
    // 25%) are skipped: their error is bounded by the grid pitch, not by
    // `tolerance`.  Among the remaining "smooth" cells, a small fraction is
    // still crossed by a kink line that happens to leave the corners in
    // agreement (the SC ratio boundaries are not axis-aligned); those cells
    // are O(pitch) in number, so validation gates on the fraction of
    // midpoints exceeding `tolerance` rather than on the absolute worst.
    const auto& grid = delivered_;
    std::size_t checked = 0;
    std::size_t outliers = 0;
    double worst = 0.0;
    for (std::size_t i = 0; i + 1 < vs.size(); ++i) {
      for (std::size_t j = 0; j + 1 < gs.size(); ++j) {
        const double c00 = grid(vs[i], gs[j]);
        const double c01 = grid(vs[i], gs[j + 1]);
        const double c10 = grid(vs[i + 1], gs[j]);
        const double c11 = grid(vs[i + 1], gs[j + 1]);
        const double cmin = std::min(std::min(c00, c01), std::min(c10, c11));
        const double cmax = std::max(std::max(c00, c01), std::max(c10, c11));
        if (cmin <= 1e-6 || (cmax - cmin) / cmax > 0.25) continue;
        const Volts v(0.5 * (vs[i] + vs[i + 1]));
        const double g = 0.5 * (gs[j] + gs[j + 1]);
        const double exact = model.delivered_power(v, g).value();
        if (exact <= 1e-6) continue;
        const double err = std::fabs(grid(v.value(), g) - exact) / exact;
        ++checked;
        worst = std::max(worst, err);
        if (err > config_.tolerance) ++outliers;
      }
    }
    validation_error_ = worst;
    validation_outlier_fraction_ =
        checked > 0 ? static_cast<double>(outliers) / static_cast<double>(checked)
                    : 0.0;
    HEMP_REQUIRE(validation_outlier_fraction_ <= SurfaceConfig::kMaxOutlierFraction,
                 "ModelSurfaces: too many midpoints exceed the configured "
                 "tolerance — raise the grid resolution or the tolerance");
  }
}

bool ModelSurfaces::in_grid(double vdd, double g) const {
  return delivered_.contains(vdd, g);
}

MaxPowerPoint ModelSurfaces::mpp(double g) const {
  if (g < config_.irradiance_min || g > config_.irradiance_max) {
    return model_->mpp(g);  // exact fallback outside the gridded span
  }
  MaxPowerPoint out;
  out.power = Watts(mpp_power_(g));
  out.voltage = Volts(mpp_voltage_(g));
  out.current = out.voltage.value() > 0.0
                    ? Amps(out.power.value() / out.voltage.value())
                    : Amps(0.0);
  return out;
}

Watts ModelSurfaces::delivered_power(Volts vdd, double g) const {
  if (!in_grid(vdd.value(), g)) return model_->delivered_power(vdd, g);
  return Watts(delivered_(vdd.value(), g));
}

double ModelSurfaces::efficiency_at(Volts vdd, double g) const {
  if (!in_grid(vdd.value(), g)) return model_->efficiency_at(vdd, g);
  return efficiency_(vdd.value(), g);
}

Hertz ModelSurfaces::max_frequency(Volts vdd) const {
  const double v = vdd.value();
  if (v < fmax_.x_min() || v > fmax_.x_max()) {
    return model_->processor().max_frequency(vdd);
  }
  return Hertz(fmax_(v));
}

}  // namespace hemp
