// Conventional MPPT baselines for comparison against the paper's
// threshold-time scheme (Sec. VI-A argues its scheme is faster and needs no
// current sensing "compared to current measurement [18]").
//
//   * Perturb & Observe: hill-climb the DVFS ladder on measured harvested
//     power.  Requires a current/power sensor on the solar node — exactly
//     the hardware cost the paper's scheme avoids.
//   * Fractional open-circuit voltage: periodically open the load for a
//     short window, sample Voc, and regulate the node to k * Voc (k ~ 0.8).
//     Requires no sensor but loses harvest during every sampling window and
//     tracks only as well as the fixed fraction approximates the real MPP.
#pragma once

#include "core/system_model.hpp"
#include "processor/processor.hpp"
#include "sim/soc_system.hpp"

namespace hemp {

struct PerturbObserveParams {
  /// Perturbation period; classic P&O must wait for the node to settle
  /// between perturbations, so this is much slower than the node dynamics.
  Seconds perturb_period{2e-3};
  /// Ladder geometry (shared with the paper's tracker for fairness).
  int dvfs_steps = 48;
  Volts vdd_ceiling{0.8};

  void validate() const;
};

/// Classic hill-climbing MPPT: perturb the load, observe harvested power.
class PerturbObserveController : public SocController {
 public:
  PerturbObserveController(const SystemModel& model,
                           const PerturbObserveParams& params = {});

  void on_start(const SocState& state, SocCommand& cmd) override;
  void on_tick(const SocState& state, SocCommand& cmd) override;

  [[nodiscard]] int perturbations() const { return perturbations_; }
  [[nodiscard]] int reversals() const { return reversals_; }

 private:
  void apply_level(SocCommand& cmd);

  const SystemModel* model_;
  PerturbObserveParams params_;
  DvfsLadder ladder_;
  std::size_t level_ = 0;
  int direction_ = +1;  // +1 = draw more (push node down), -1 = back off
  Watts prev_power_{0.0};
  Seconds next_perturb_{0.0};
  int perturbations_ = 0;
  int reversals_ = 0;
};

struct FractionalVocParams {
  /// Fraction of the sampled Voc used as the MPP estimate (k ~ 0.76-0.82 for
  /// silicon cells).
  double voc_fraction = 0.80;
  /// How often the load is opened to sample Voc.
  Seconds sample_period{50e-3};
  /// How long the load stays open per sample (node must rise near Voc).
  Seconds sample_window{3e-3};
  /// Regulation loop (same shape as the paper's tracker).
  Seconds control_period{500e-6};
  Volts deadband{0.02};
  Volts slew_tolerance{0.002};
  int dvfs_steps = 48;
  Volts vdd_ceiling{0.8};

  void validate() const;
};

/// Fractional-Voc MPPT: sample the open-circuit voltage, target k * Voc.
class FractionalVocController : public SocController {
 public:
  FractionalVocController(const SystemModel& model,
                          const FractionalVocParams& params = {});

  void on_start(const SocState& state, SocCommand& cmd) override;
  void on_tick(const SocState& state, SocCommand& cmd) override;

  [[nodiscard]] Volts target_voltage() const { return v_target_; }
  [[nodiscard]] int samples_taken() const { return samples_; }

 private:
  void apply_level(SocCommand& cmd);

  const SystemModel* model_;
  FractionalVocParams params_;
  DvfsLadder ladder_;
  std::size_t level_ = 0;
  Volts v_target_{0.0};
  Volts prev_v_solar_{0.0};
  bool sampling_ = false;
  Seconds sample_ends_{0.0};
  Seconds next_sample_{0.0};
  Seconds next_control_{0.0};
  int samples_ = 0;
};

}  // namespace hemp
