// End-to-end recognition pipeline: scan-in -> Sobel gradients -> windowed
// gradient features -> pooled frame descriptor -> linear classification.
// This is the workload ("job") the paper's energy manager schedules; the
// cycle count it reports drives every timing experiment (Secs. VI-VII).
#pragma once

#include <vector>

#include "imgproc/classifier.hpp"
#include "imgproc/cycle_model.hpp"
#include "imgproc/features.hpp"
#include "imgproc/gradient.hpp"
#include "imgproc/image.hpp"

namespace hemp {

struct PipelineParams {
  int orientation_bins = 8;
  FeatureExtractorParams extractor{};
  CycleCosts cycle_costs{};

  void validate() const;
};

struct RecognitionResult {
  int predicted_class = -1;
  std::vector<float> scores;
  double cycles = 0.0;  ///< total cycles charged for this frame
};

class RecognitionPipeline {
 public:
  RecognitionPipeline(PipelineParams params, LinearClassifier classifier);

  /// Process one frame end to end.
  [[nodiscard]] RecognitionResult process(const Image& frame) const;

  /// Cycle cost of one frame of the given size (runs the pipeline on a
  /// synthetic frame; the count is data-independent up to noise in the
  /// histogram, so this is what the scheduler budgets with).
  [[nodiscard]] double frame_cycles(int width, int height) const;

  /// Extract the pooled frame descriptor without classifying (training path).
  [[nodiscard]] std::vector<float> describe(const Image& frame) const;

  [[nodiscard]] int feature_dims() const { return extractor_.dims_per_window(); }
  [[nodiscard]] const PipelineParams& params() const { return params_; }
  [[nodiscard]] const LinearClassifier& classifier() const { return classifier_; }

  /// Pipeline with geometry matching the paper's 64x64-frame test chip and an
  /// untrained placeholder classifier of `classes` classes.
  static RecognitionPipeline make_test_chip_pipeline(int classes = 4);

 private:
  PipelineParams params_;
  GradientEngine gradients_;
  FeatureExtractor extractor_;
  LinearClassifier classifier_;
};

}  // namespace hemp
