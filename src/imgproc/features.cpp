#include "imgproc/features.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hemp {

void FeatureExtractorParams::validate() const {
  HEMP_REQUIRE(cell_size >= 2, "FeatureExtractor: cell size must be >= 2");
  HEMP_REQUIRE(window_cells >= 1, "FeatureExtractor: window cells must be >= 1");
  HEMP_REQUIRE(window_stride >= 1, "FeatureExtractor: stride must be >= 1");
}

FeatureExtractor::FeatureExtractor(const FeatureExtractorParams& params,
                                   int orientation_bins)
    : params_(params), bins_(orientation_bins) {
  params_.validate();
  HEMP_REQUIRE(orientation_bins >= 2, "FeatureExtractor: need >= 2 orientation bins");
}

int FeatureExtractor::dims_per_window() const {
  return params_.window_cells * params_.window_cells * bins_;
}

FeatureSet FeatureExtractor::extract(const GradientField& grad,
                                     CycleCounter& counter) const {
  const int cs = params_.cell_size;
  const int cells_x = grad.width / cs;
  const int cells_y = grad.height / cs;
  HEMP_CHECK_RANGE(cells_x >= params_.window_cells && cells_y >= params_.window_cells,
                   "FeatureExtractor: frame too small for the window size");

  // --- Stage 1: per-cell orientation histograms weighted by magnitude. ------
  std::vector<float> hist(static_cast<std::size_t>(cells_x) * cells_y * bins_, 0.0f);
  for (int y = 0; y < cells_y * cs; ++y) {
    for (int x = 0; x < cells_x * cs; ++x) {
      const std::size_t i = grad.index(x, y);
      const int cx = x / cs, cy = y / cs;
      const std::size_t h =
          (static_cast<std::size_t>(cy) * cells_x + cx) * bins_ + grad.orientation[i];
      hist[h] += static_cast<float>(grad.magnitude[i]);
      counter.charge_load(2);   // magnitude + orientation
      counter.charge_mac(1);    // histogram accumulate
      counter.charge_store(1);
    }
  }

  // --- Stage 2: gather windows of window_cells x window_cells cells and
  //     L2-normalize each window vector. ---------------------------------------
  const int wc = params_.window_cells;
  const int stride_cells = params_.window_stride / cs > 0 ? params_.window_stride / cs : 1;
  FeatureSet out;
  out.windows_x = (cells_x - wc) / stride_cells + 1;
  out.windows_y = (cells_y - wc) / stride_cells + 1;
  out.dims = dims_per_window();
  out.vectors.resize(out.window_count() * static_cast<std::size_t>(out.dims));

  for (int wy = 0; wy < out.windows_y; ++wy) {
    for (int wx = 0; wx < out.windows_x; ++wx) {
      float* vec = out.vectors.data() +
                   (static_cast<std::size_t>(wy) * out.windows_x + wx) * out.dims;
      int d = 0;
      double norm2 = 0.0;
      for (int cy = 0; cy < wc; ++cy) {
        for (int cx = 0; cx < wc; ++cx) {
          const int gx = wx * stride_cells + cx;
          const int gy = wy * stride_cells + cy;
          for (int b = 0; b < bins_; ++b) {
            const float v =
                hist[(static_cast<std::size_t>(gy) * cells_x + gx) * bins_ + b];
            vec[d++] = v;
            norm2 += static_cast<double>(v) * v;
            counter.charge_load(1);
            counter.charge_mac(1);
          }
        }
      }
      const float inv = norm2 > 0.0 ? static_cast<float>(1.0 / std::sqrt(norm2)) : 0.0f;
      counter.charge_sqrt(1);
      counter.charge_div(1);
      for (int i = 0; i < out.dims; ++i) {
        vec[i] *= inv;
        counter.charge_mul(1);
        counter.charge_store(1);
      }
    }
  }
  return out;
}

std::vector<float> pool_features(const FeatureSet& features) {
  HEMP_REQUIRE(features.window_count() > 0, "pool_features: empty feature set");
  std::vector<float> pooled(static_cast<std::size_t>(features.dims), 0.0f);
  for (int wy = 0; wy < features.windows_y; ++wy) {
    for (int wx = 0; wx < features.windows_x; ++wx) {
      const float* v = features.window(wx, wy);
      for (int d = 0; d < features.dims; ++d) pooled[d] += v[d];
    }
  }
  const float inv = 1.0f / static_cast<float>(features.window_count());
  for (auto& p : pooled) p *= inv;
  return pooled;
}

}  // namespace hemp
