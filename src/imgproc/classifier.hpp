// Linear classifier ("classifier" block of the paper's test chip, Fig. 10)
// plus a perceptron trainer used by tests and examples to produce weights
// from synthetic pattern classes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "imgproc/cycle_model.hpp"

namespace hemp {

class LinearClassifier {
 public:
  /// `classes` weight vectors of `dims` weights each, plus one bias per class.
  LinearClassifier(int classes, int dims);

  [[nodiscard]] int classes() const { return classes_; }
  [[nodiscard]] int dims() const { return dims_; }

  [[nodiscard]] float weight(int c, int d) const;
  void set_weight(int c, int d, float w);
  [[nodiscard]] float bias(int c) const;
  void set_bias(int c, float b);

  /// Per-class scores for one feature vector; charges MACs to `counter`.
  [[nodiscard]] std::vector<float> scores(const std::vector<float>& features,
                                          CycleCounter& counter) const;

  /// Argmax class for one feature vector.
  [[nodiscard]] int classify(const std::vector<float>& features,
                             CycleCounter& counter) const;

 private:
  int classes_;
  int dims_;
  std::vector<float> weights_;  // [classes][dims]
  std::vector<float> biases_;   // [classes]
};

/// Multi-class perceptron trainer.
class PerceptronTrainer {
 public:
  struct Options {
    int epochs = 50;
    float learning_rate = 0.1f;
    /// Stop early once an epoch makes no mistakes.
    bool stop_when_separated = true;
  };

  PerceptronTrainer() : PerceptronTrainer(Options{}) {}
  explicit PerceptronTrainer(const Options& options);

  struct Sample {
    std::vector<float> features;
    int label;
  };

  /// Train a classifier on the samples.  Returns the trained model and the
  /// number of epochs actually run.
  struct Result {
    LinearClassifier model;
    int epochs_run;
    int final_epoch_mistakes;
  };
  [[nodiscard]] Result train(const std::vector<Sample>& samples, int classes,
                             int dims) const;

 private:
  Options options_;
};

}  // namespace hemp
