// Sobel gradient engine: the "feature extraction ... using gradient feature
// vectors" front half of the paper's pattern-recognition processor (Sec. VII).
#pragma once

#include <cstdint>
#include <vector>

#include "imgproc/cycle_model.hpp"
#include "imgproc/image.hpp"

namespace hemp {

/// Per-pixel gradient: signed x/y components, magnitude (L1 approximation as
/// the hardware would compute it) and quantized orientation bin.
struct GradientField {
  int width = 0;
  int height = 0;
  std::vector<std::int16_t> gx;
  std::vector<std::int16_t> gy;
  std::vector<std::uint16_t> magnitude;
  std::vector<std::uint8_t> orientation;  ///< bin index in [0, bins)

  [[nodiscard]] std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * width + x;
  }
};

class GradientEngine {
 public:
  /// `orientation_bins` quantization levels over [0, pi).
  explicit GradientEngine(int orientation_bins = 8);

  /// 3x3 Sobel over the whole frame (edge-clamped), charging `counter`.
  [[nodiscard]] GradientField compute(const Image& img, CycleCounter& counter) const;

  [[nodiscard]] int orientation_bins() const { return bins_; }

 private:
  /// Hardware-style orientation quantization without trig: compares |gy| vs
  /// |gx| against fixed-point slope thresholds.
  [[nodiscard]] std::uint8_t quantize_orientation(int gx, int gy) const;

  int bins_;
};

}  // namespace hemp
