#include "imgproc/cycle_model.hpp"

#include "common/error.hpp"

namespace hemp {

void CycleCosts::validate() const {
  HEMP_REQUIRE(scan_in >= 0.0 && load >= 0.0 && store >= 0.0 && alu >= 0.0 &&
                   mul >= 0.0 && mac >= 0.0 && div >= 0.0 && sqrt >= 0.0,
               "CycleCosts: per-op costs must be non-negative");
  HEMP_REQUIRE(cpi_scale > 0.0, "CycleCosts: cpi scale must be positive");
}

CycleCounter::CycleCounter(const CycleCosts& costs) : costs_(costs) {
  costs_.validate();
}

}  // namespace hemp
