// Windowed gradient-feature extraction ("vector formation" block of the
// paper's test chip, Fig. 10): histogram-of-gradients features over
// overlapping windows of the frame.
#pragma once

#include <vector>

#include "imgproc/cycle_model.hpp"
#include "imgproc/gradient.hpp"

namespace hemp {

struct FeatureExtractorParams {
  int cell_size = 8;    ///< pixels per histogram cell side
  int window_cells = 2; ///< cells per window side (window = 2x2 cells)
  int window_stride = 8;///< pixels between window origins (overlapping)

  void validate() const;
};

/// One feature vector per window, plus window layout metadata.
struct FeatureSet {
  int windows_x = 0;
  int windows_y = 0;
  int dims = 0;  ///< feature dimensionality per window
  /// Row-major [windows_y][windows_x][dims], block-normalized to unit L2.
  std::vector<float> vectors;

  [[nodiscard]] const float* window(int wx, int wy) const {
    return vectors.data() + (static_cast<std::size_t>(wy) * windows_x + wx) * dims;
  }
  [[nodiscard]] std::size_t window_count() const {
    return static_cast<std::size_t>(windows_x) * windows_y;
  }
};

class FeatureExtractor {
 public:
  FeatureExtractor(const FeatureExtractorParams& params, int orientation_bins);

  /// Histogram cells, aggregate to windows, L2-normalize; charges `counter`.
  [[nodiscard]] FeatureSet extract(const GradientField& grad,
                                   CycleCounter& counter) const;

  /// Feature dimensionality per window for these parameters.
  [[nodiscard]] int dims_per_window() const;

  [[nodiscard]] const FeatureExtractorParams& params() const { return params_; }

 private:
  FeatureExtractorParams params_;
  int bins_;
};

/// Pool a whole FeatureSet into one frame-level descriptor by averaging the
/// window vectors (used by the frame classifier).
std::vector<float> pool_features(const FeatureSet& features);

}  // namespace hemp
