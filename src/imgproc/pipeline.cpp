#include "imgproc/pipeline.hpp"

#include <utility>

#include "common/error.hpp"

namespace hemp {

void PipelineParams::validate() const {
  HEMP_REQUIRE(orientation_bins >= 2, "Pipeline: need >= 2 orientation bins");
  extractor.validate();
  cycle_costs.validate();
}

RecognitionPipeline::RecognitionPipeline(PipelineParams params,
                                         LinearClassifier classifier)
    : params_(std::move(params)),
      gradients_(params_.orientation_bins),
      extractor_(params_.extractor, params_.orientation_bins),
      classifier_(std::move(classifier)) {
  params_.validate();
  HEMP_REQUIRE(classifier_.dims() == extractor_.dims_per_window(),
               "Pipeline: classifier dims must match the pooled feature dims");
}

RecognitionResult RecognitionPipeline::process(const Image& frame) const {
  CycleCounter counter(params_.cycle_costs);
  const GradientField grad = gradients_.compute(frame, counter);
  const FeatureSet features = extractor_.extract(grad, counter);
  const std::vector<float> pooled = pool_features(features);
  // Pooling: one MAC per (window, dim).
  counter.charge_mac(features.window_count() * static_cast<std::size_t>(features.dims));
  RecognitionResult out;
  out.scores = classifier_.scores(pooled, counter);
  out.predicted_class = classifier_.classify(pooled, counter);
  out.cycles = counter.cycles();
  return out;
}

double RecognitionPipeline::frame_cycles(int width, int height) const {
  return process(Image::ramp(width, height)).cycles;
}

std::vector<float> RecognitionPipeline::describe(const Image& frame) const {
  CycleCounter counter(params_.cycle_costs);
  const GradientField grad = gradients_.compute(frame, counter);
  const FeatureSet features = extractor_.extract(grad, counter);
  return pool_features(features);
}

RecognitionPipeline RecognitionPipeline::make_test_chip_pipeline(int classes) {
  PipelineParams params;
  params.orientation_bins = 8;
  params.extractor.cell_size = 8;
  params.extractor.window_cells = 2;
  params.extractor.window_stride = 8;
  const int dims = params.extractor.window_cells * params.extractor.window_cells *
                   params.orientation_bins;
  return RecognitionPipeline(params, LinearClassifier(classes, dims));
}

}  // namespace hemp
