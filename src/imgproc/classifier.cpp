#include "imgproc/classifier.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hemp {

LinearClassifier::LinearClassifier(int classes, int dims)
    : classes_(classes), dims_(dims),
      weights_(static_cast<std::size_t>(classes) * dims, 0.0f),
      biases_(static_cast<std::size_t>(classes), 0.0f) {
  HEMP_REQUIRE(classes >= 2, "LinearClassifier: need >= 2 classes");
  HEMP_REQUIRE(dims >= 1, "LinearClassifier: need >= 1 feature dim");
}

float LinearClassifier::weight(int c, int d) const {
  HEMP_CHECK_RANGE(c >= 0 && c < classes_ && d >= 0 && d < dims_,
                   "LinearClassifier: weight index out of range");
  return weights_[static_cast<std::size_t>(c) * dims_ + d];
}

void LinearClassifier::set_weight(int c, int d, float w) {
  HEMP_CHECK_RANGE(c >= 0 && c < classes_ && d >= 0 && d < dims_,
                   "LinearClassifier: weight index out of range");
  weights_[static_cast<std::size_t>(c) * dims_ + d] = w;
}

float LinearClassifier::bias(int c) const {
  HEMP_CHECK_RANGE(c >= 0 && c < classes_, "LinearClassifier: class out of range");
  return biases_[static_cast<std::size_t>(c)];
}

void LinearClassifier::set_bias(int c, float b) {
  HEMP_CHECK_RANGE(c >= 0 && c < classes_, "LinearClassifier: class out of range");
  biases_[static_cast<std::size_t>(c)] = b;
}

std::vector<float> LinearClassifier::scores(const std::vector<float>& features,
                                            CycleCounter& counter) const {
  HEMP_CHECK_RANGE(static_cast<int>(features.size()) == dims_,
                   "LinearClassifier: feature dimensionality mismatch");
  std::vector<float> out(static_cast<std::size_t>(classes_));
  for (int c = 0; c < classes_; ++c) {
    const float* w = weights_.data() + static_cast<std::size_t>(c) * dims_;
    float s = biases_[static_cast<std::size_t>(c)];
    for (int d = 0; d < dims_; ++d) s += w[d] * features[static_cast<std::size_t>(d)];
    counter.charge_load(static_cast<std::uint64_t>(dims_) * 2);
    counter.charge_mac(static_cast<std::uint64_t>(dims_));
    out[static_cast<std::size_t>(c)] = s;
  }
  return out;
}

int LinearClassifier::classify(const std::vector<float>& features,
                               CycleCounter& counter) const {
  const std::vector<float> s = scores(features, counter);
  counter.charge_alu(static_cast<std::uint64_t>(classes_));  // argmax compares
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

PerceptronTrainer::PerceptronTrainer(const Options& options) : options_(options) {
  HEMP_REQUIRE(options_.epochs >= 1, "PerceptronTrainer: need >= 1 epoch");
  HEMP_REQUIRE(options_.learning_rate > 0.0f,
               "PerceptronTrainer: learning rate must be positive");
}

PerceptronTrainer::Result PerceptronTrainer::train(const std::vector<Sample>& samples,
                                                   int classes, int dims) const {
  HEMP_REQUIRE(!samples.empty(), "PerceptronTrainer: no samples");
  for (const auto& s : samples) {
    HEMP_REQUIRE(static_cast<int>(s.features.size()) == dims,
                 "PerceptronTrainer: sample dimensionality mismatch");
    HEMP_REQUIRE(s.label >= 0 && s.label < classes,
                 "PerceptronTrainer: label out of range");
  }
  LinearClassifier model(classes, dims);
  CycleCounter scratch;  // training happens off-chip; cycles not charged
  int epochs_run = 0;
  int mistakes = 0;
  for (int e = 0; e < options_.epochs; ++e) {
    ++epochs_run;
    mistakes = 0;
    for (const auto& s : samples) {
      const int pred = model.classify(s.features, scratch);
      if (pred == s.label) continue;
      ++mistakes;
      // Standard multi-class perceptron update: promote truth, demote guess.
      for (int d = 0; d < dims; ++d) {
        const float x = s.features[static_cast<std::size_t>(d)];
        model.set_weight(s.label, d,
                         model.weight(s.label, d) + options_.learning_rate * x);
        model.set_weight(pred, d, model.weight(pred, d) - options_.learning_rate * x);
      }
      model.set_bias(s.label, model.bias(s.label) + options_.learning_rate);
      model.set_bias(pred, model.bias(pred) - options_.learning_rate);
    }
    if (options_.stop_when_separated && mistakes == 0) break;
  }
  return {std::move(model), epochs_run, mistakes};
}

}  // namespace hemp
