#include "imgproc/gradient.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace hemp {

GradientEngine::GradientEngine(int orientation_bins) : bins_(orientation_bins) {
  HEMP_REQUIRE(orientation_bins >= 2 && orientation_bins <= 36,
               "GradientEngine: orientation bins out of range [2, 36]");
}

std::uint8_t GradientEngine::quantize_orientation(int gx, int gy) const {
  // Angle in [0, pi): gradients at theta and theta+pi are the same edge.
  double angle = std::atan2(static_cast<double>(gy), static_cast<double>(gx));
  if (angle < 0.0) angle += std::numbers::pi;
  if (angle >= std::numbers::pi) angle -= std::numbers::pi;
  int bin = static_cast<int>(angle / std::numbers::pi * bins_);
  if (bin >= bins_) bin = bins_ - 1;
  return static_cast<std::uint8_t>(bin);
}

GradientField GradientEngine::compute(const Image& img, CycleCounter& counter) const {
  GradientField out;
  out.width = img.width();
  out.height = img.height();
  const std::size_t n = img.pixel_count();
  out.gx.resize(n);
  out.gy.resize(n);
  out.magnitude.resize(n);
  out.orientation.resize(n);

  // Serial scan-in of the frame into on-chip SRAM (paper Sec. VII).
  counter.charge_scan_in(n);

  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      // 3x3 neighbourhood reads.
      const int p00 = img.at_clamped(x - 1, y - 1), p01 = img.at_clamped(x, y - 1),
                p02 = img.at_clamped(x + 1, y - 1);
      const int p10 = img.at_clamped(x - 1, y), p12 = img.at_clamped(x + 1, y);
      const int p20 = img.at_clamped(x - 1, y + 1), p21 = img.at_clamped(x, y + 1),
                p22 = img.at_clamped(x + 1, y + 1);
      counter.charge_load(8);

      // Sobel kernels; the *2 terms are shifts in hardware.
      const int gx = (p02 + 2 * p12 + p22) - (p00 + 2 * p10 + p20);
      const int gy = (p20 + 2 * p21 + p22) - (p00 + 2 * p01 + p02);
      counter.charge_alu(10);  // 8 adds/subs + 2 shifts

      // L1 magnitude (|gx| + |gy|), as the datapath computes it.
      const int mag = std::abs(gx) + std::abs(gy);
      counter.charge_alu(3);

      // Orientation quantization: bins_/2 slope comparisons on average.
      counter.charge_mul(2);
      counter.charge_alu(static_cast<std::uint64_t>(bins_) / 2);

      const std::size_t i = out.index(x, y);
      out.gx[i] = static_cast<std::int16_t>(gx);
      out.gy[i] = static_cast<std::int16_t>(gy);
      out.magnitude[i] = static_cast<std::uint16_t>(mag);
      out.orientation[i] = quantize_orientation(gx, gy);
      counter.charge_store(4);
    }
  }
  return out;
}

}  // namespace hemp
