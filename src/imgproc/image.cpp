#include "imgproc/image.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hemp {

namespace {
// Validate before the pixel vector is sized: a negative dimension must throw
// ModelError, not overflow into a gigantic allocation.
std::size_t checked_pixel_count(int width, int height) {
  HEMP_REQUIRE(width > 0 && height > 0, "Image: dimensions must be positive");
  return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
}
}  // namespace

Image::Image(int width, int height, std::uint8_t fill)
    : width_(width), height_(height), pixels_(checked_pixel_count(width, height), fill) {}

std::uint8_t Image::at(int x, int y) const {
  HEMP_CHECK_RANGE(x >= 0 && x < width_ && y >= 0 && y < height_,
                   "Image: pixel out of bounds");
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

void Image::set(int x, int y, std::uint8_t value) {
  HEMP_CHECK_RANGE(x >= 0 && x < width_ && y >= 0 && y < height_,
                   "Image: pixel out of bounds");
  pixels_[static_cast<std::size_t>(y) * width_ + x] = value;
}

std::uint8_t Image::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

Image Image::ramp(int width, int height) {
  Image img(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      img.set(x, y, static_cast<std::uint8_t>(255 * x / std::max(width - 1, 1)));
    }
  }
  return img;
}

Image Image::square(int width, int height, int half_side, std::uint8_t fg,
                    std::uint8_t bg) {
  HEMP_REQUIRE(half_side > 0, "Image::square: half side must be positive");
  Image img(width, height, bg);
  const int cx = width / 2, cy = height / 2;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (std::abs(x - cx) <= half_side && std::abs(y - cy) <= half_side) {
        img.set(x, y, fg);
      }
    }
  }
  return img;
}

Image Image::disc(int width, int height, int radius, std::uint8_t fg, std::uint8_t bg) {
  HEMP_REQUIRE(radius > 0, "Image::disc: radius must be positive");
  Image img(width, height, bg);
  const int cx = width / 2, cy = height / 2;
  const int r2 = radius * radius;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const int dx = x - cx, dy = y - cy;
      if (dx * dx + dy * dy <= r2) img.set(x, y, fg);
    }
  }
  return img;
}

Image Image::cross(int width, int height, int thickness, std::uint8_t fg,
                   std::uint8_t bg) {
  HEMP_REQUIRE(thickness > 0, "Image::cross: thickness must be positive");
  Image img(width, height, bg);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Two diagonals of the frame.
      const int d1 = std::abs(x * (height - 1) - y * (width - 1)) / std::max(width, height);
      const int d2 = std::abs(x * (height - 1) + y * (width - 1) - (width - 1) * (height - 1)) /
                     std::max(width, height);
      if (d1 <= thickness || d2 <= thickness) img.set(x, y, fg);
    }
  }
  return img;
}

Image Image::stripes(int width, int height, int period, std::uint8_t fg, std::uint8_t bg) {
  HEMP_REQUIRE(period >= 2, "Image::stripes: period must be >= 2");
  Image img(width, height, bg);
  for (int y = 0; y < height; ++y) {
    if ((y / (period / 2)) % 2 == 0) continue;
    for (int x = 0; x < width; ++x) img.set(x, y, fg);
  }
  return img;
}

Image Image::noise(int width, int height, std::uint32_t seed) {
  Image img(width, height);
  // xorshift32: deterministic, no <random> heft needed for test patterns.
  std::uint32_t s = seed ? seed : 1u;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      s ^= s << 13;
      s ^= s >> 17;
      s ^= s << 5;
      img.set(x, y, static_cast<std::uint8_t>(s & 0xFF));
    }
  }
  return img;
}

}  // namespace hemp
