// 8-bit grayscale image container plus synthetic pattern generators.
//
// The paper's test chip processes externally scanned-in low-resolution frames
// (64x64 pixels, Sec. VII).  Synthetic patterns stand in for the camera: they
// give the recognition pipeline distinguishable classes to classify and give
// the cycle model realistic data-dependent work.
#pragma once

#include <cstdint>
#include <vector>

namespace hemp {

class Image {
 public:
  Image(int width, int height, std::uint8_t fill = 0);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t pixel_count() const { return pixels_.size(); }

  [[nodiscard]] std::uint8_t at(int x, int y) const;
  void set(int x, int y, std::uint8_t value);

  /// Clamped access: coordinates outside the frame read the nearest edge
  /// pixel (border handling for convolution).
  [[nodiscard]] std::uint8_t at_clamped(int x, int y) const;

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return pixels_; }

  // --- Synthetic pattern generators ------------------------------------------

  /// Horizontal luminance ramp (strong vertical edges everywhere).
  static Image ramp(int width, int height);
  /// Filled square centered in the frame.
  static Image square(int width, int height, int half_side, std::uint8_t fg = 230,
                      std::uint8_t bg = 30);
  /// Filled disc centered in the frame.
  static Image disc(int width, int height, int radius, std::uint8_t fg = 230,
                    std::uint8_t bg = 30);
  /// X-shaped cross of the given arm thickness.
  static Image cross(int width, int height, int thickness, std::uint8_t fg = 230,
                     std::uint8_t bg = 30);
  /// Horizontal stripes with the given period.
  static Image stripes(int width, int height, int period, std::uint8_t fg = 230,
                       std::uint8_t bg = 30);
  /// Uniform pseudo-random noise (deterministic for a given seed).
  static Image noise(int width, int height, std::uint32_t seed);

 private:
  int width_;
  int height_;
  std::vector<std::uint8_t> pixels_;
};

}  // namespace hemp
