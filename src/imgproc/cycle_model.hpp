// Cycle accounting for the image-processor datapath.
//
// The paper's chip is a simple non-pipelined scalar core with on-chip SRAM
// and a serial scan-in interface ("image pixels are externally scanned into
// chip and stored in on-chip memory", Sec. VII).  Every stage of the pipeline
// charges abstract operations to a CycleCounter; the per-op costs are
// calibrated so a 64x64 frame costs ~9.7 M cycles — i.e. ~15 ms at the
// 0.5 V clock, matching the paper's quoted frame time.
#pragma once

#include <cstdint>

namespace hemp {

/// Cycles charged per abstract operation.
struct CycleCosts {
  double scan_in = 64.0;   ///< serial scan-in per pixel (bit-serial shift)
  double load = 4.0;       ///< SRAM read
  double store = 4.0;      ///< SRAM write
  double alu = 1.0;        ///< add/sub/compare/shift
  double mul = 9.0;        ///< iterative multiplier
  double mac = 10.0;       ///< multiply-accumulate
  double div = 40.0;       ///< iterative divider
  double sqrt = 60.0;      ///< iterative square root (block normalization)
  /// Global microarchitecture factor (fetch/decode overhead of the
  /// non-pipelined core).  Applied to every charge; calibrated so a 64x64
  /// frame costs ~9.7 M cycles = ~15 ms at the 0.5 V clock (paper Sec. VII).
  double cpi_scale = 12.7;

  void validate() const;
};

class CycleCounter {
 public:
  explicit CycleCounter(const CycleCosts& costs = {});

  void charge_scan_in(std::uint64_t n = 1) { add(costs_.scan_in, n); }
  void charge_load(std::uint64_t n = 1) { add(costs_.load, n); }
  void charge_store(std::uint64_t n = 1) { add(costs_.store, n); }
  void charge_alu(std::uint64_t n = 1) { add(costs_.alu, n); }
  void charge_mul(std::uint64_t n = 1) { add(costs_.mul, n); }
  void charge_mac(std::uint64_t n = 1) { add(costs_.mac, n); }
  void charge_div(std::uint64_t n = 1) { add(costs_.div, n); }
  void charge_sqrt(std::uint64_t n = 1) { add(costs_.sqrt, n); }

  [[nodiscard]] double cycles() const { return cycles_; }
  void reset() { cycles_ = 0.0; }

  [[nodiscard]] const CycleCosts& costs() const { return costs_; }

 private:
  void add(double per_op, std::uint64_t n) {
    cycles_ += per_op * costs_.cpi_scale * static_cast<double>(n);
  }

  CycleCosts costs_;
  double cycles_ = 0.0;
};

}  // namespace hemp
