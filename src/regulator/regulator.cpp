#include "regulator/regulator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace hemp {

std::string to_string(RegulatorKind k) {
  switch (k) {
    case RegulatorKind::kLdo: return "LDO";
    case RegulatorKind::kSwitchedCap: return "SC";
    case RegulatorKind::kBuck: return "buck";
    case RegulatorKind::kBypass: return "bypass";
  }
  throw ModelError("to_string: unknown regulator kind");
}

bool Regulator::supports(Volts vin, Volts vout) const {
  return output_range(vin).contains(vout);
}

Watts Regulator::input_power(Volts vin, Volts vout, Watts pout) const {
  HEMP_CHECK_RANGE(pout.value() >= 0.0, "Regulator: negative load power");
  const double eta = efficiency(vin, vout, pout);
  if (pout.value() == 0.0) {
    // Standby draw: probe the loss model with a vanishing load.
    const Watts probe(1e-9);
    const double eta_probe = efficiency(vin, vout, probe);
    if (eta_probe <= 0.0) return Watts(0.0);
    return Watts(probe.value() / eta_probe - probe.value());
  }
  HEMP_CHECK_RANGE(eta > 0.0, "Regulator: zero efficiency at nonzero load");
  return Watts(pout.value() / eta);
}

Watts Regulator::output_power(Volts vin, Volts vout, Watts pin) const {
  HEMP_CHECK_RANGE(pin.value() >= 0.0, "Regulator: negative input power");
  if (pin.value() == 0.0) return Watts(0.0);
  // input_power is strictly increasing in pout; bracket and invert.
  auto f = [&](double pout) {
    return input_power(vin, vout, Watts(pout)).value() - pin.value();
  };
  const double standby = input_power(vin, vout, Watts(0.0)).value();
  if (pin.value() <= standby) return Watts(0.0);
  double hi = rated_load().value();
  if (f(hi) < 0.0) {
    // Input power exceeds what the rated load would draw; saturate at rating.
    return rated_load();
  }
  return Watts(numeric::brent_root(f, 0.0, hi, {.x_tol = 1e-12}));
}

}  // namespace hemp
