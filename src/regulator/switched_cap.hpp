// Reconfigurable switched-capacitor DC-DC converter model (paper Fig. 4).
//
// The implemented chip supports three topology ratios — 2:1, 3:2 and 5:4
// (Vout/Vin = 1/2, 2/3, 4/5) — and picks the one whose ideal output sits
// closest above the requested voltage.  Losses:
//
//   * intrinsic SC ("linear") loss: regulating below the ideal ratio output is
//     equivalent to a series resistance, eta_lin = Vout / (r * Vin);
//   * switching losses (flying-cap bottom plate, switch gate charge) that
//     scale with delivered power because the modulation loop scales f_sw with
//     load;
//   * a fixed control/clock/reference overhead.
//
// Calibrated to the paper's quoted 67% (full ~10 mW load) and 64% (half load)
// at Vout = 0.55 V, which also produces the light-load efficiency collapse
// that drives the low-light bypass rule (Fig. 7a).
#pragma once

#include <vector>

#include "regulator/regulator.hpp"

namespace hemp {

struct SwitchedCapParams {
  /// Available conversion ratios r = Vout_ideal / Vin, descending.
  std::vector<double> ratios{4.0 / 5.0, 2.0 / 3.0, 1.0 / 2.0};
  /// Regulation headroom required between r*Vin and Vout.
  Volts regulation_margin{0.02};
  /// Fixed control / clocking / reference power.
  Watts control_power{0.64e-3};
  /// Switching loss proportional to delivered power (bottom-plate + gate
  /// charge under load-scaled f_sw).
  double switching_loss_factor = 0.304;
  /// Smallest regulated output.
  Volts min_output{0.25};
  /// Rated maximum load ("full load" in Fig. 4 is ~10 mW; the converter
  /// carries ~20% design margin above it).
  Watts max_load{12e-3};

  void validate() const;
};

class SwitchedCapRegulator final : public Regulator {
 public:
  explicit SwitchedCapRegulator(const SwitchedCapParams& params = {});

  [[nodiscard]] RegulatorKind kind() const override {
    return RegulatorKind::kSwitchedCap;
  }
  [[nodiscard]] std::string_view name() const override { return "SC"; }
  [[nodiscard]] VoltageRange output_range(Volts vin) const override;
  [[nodiscard]] double efficiency(Volts vin, Volts vout, Watts pout) const override;
  [[nodiscard]] Watts rated_load() const override { return params_.max_load; }

  /// Ratio the modulator would select for (vin, vout); throws RangeError when
  /// no configuration can regulate that point.
  [[nodiscard]] double active_ratio(Volts vin, Volts vout) const;

  [[nodiscard]] const SwitchedCapParams& params() const { return params_; }

 private:
  SwitchedCapParams params_;
};

}  // namespace hemp
