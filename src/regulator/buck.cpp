#include "regulator/buck.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hemp {

void BuckParams::validate() const {
  HEMP_REQUIRE(conduction_resistance.value() >= 0.0,
               "Buck: conduction resistance must be non-negative");
  HEMP_REQUIRE(switching_loss_per_v2 >= 0.0,
               "Buck: switching loss coefficient must be non-negative");
  HEMP_REQUIRE(control_power.value() >= 0.0, "Buck: control power must be non-negative");
  HEMP_REQUIRE(min_output.value() > 0.0 && min_output < max_output,
               "Buck: invalid output envelope");
  HEMP_REQUIRE(min_input.value() > 0.0 && min_input < max_input,
               "Buck: invalid input envelope");
  HEMP_REQUIRE(max_load.value() > 0.0, "Buck: rated load must be positive");
}

BuckRegulator::BuckRegulator(const BuckParams& params) : params_(params) {
  params_.validate();
}

VoltageRange BuckRegulator::output_range(Volts vin) const {
  if (vin < params_.min_input || vin > params_.max_input) {
    // Outside the rated input rail the converter cannot start: empty range.
    return {Volts(0.0), Volts(0.0)};
  }
  const Volts max(std::min(params_.max_output.value(), vin.value() * 0.9));
  return {params_.min_output, max};
}

double BuckRegulator::efficiency(Volts vin, Volts vout, Watts pout) const {
  HEMP_CHECK_RANGE(supports(vin, vout), "Buck: operating point outside envelope");
  HEMP_CHECK_RANGE(pout.value() >= 0.0, "Buck: negative load power");
  if (pout.value() == 0.0) return 0.0;
  const double iload = pout.value() / vout.value();
  const double p_cond = iload * iload * params_.conduction_resistance.value();
  const double p_sw = params_.switching_loss_per_v2 * vin.value() * vin.value();
  const double loss = p_cond + p_sw + params_.control_power.value();
  return pout.value() / (pout.value() + loss);
}

}  // namespace hemp
