#include "regulator/bypass.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hemp {

void BypassParams::validate() const {
  HEMP_REQUIRE(on_resistance.value() >= 0.0, "Bypass: Ron must be non-negative");
  HEMP_REQUIRE(tie_tolerance.value() >= 0.0, "Bypass: tolerance must be non-negative");
  HEMP_REQUIRE(max_load.value() > 0.0, "Bypass: rated load must be positive");
}

BypassSwitch::BypassSwitch(const BypassParams& params) : params_(params) {
  params_.validate();
}

VoltageRange BypassSwitch::output_range(Volts vin) const {
  const double tol = params_.tie_tolerance.value();
  const Volts lo(std::max(vin.value() - tol, 0.0));
  return {lo, vin};
}

Volts BypassSwitch::dropped_output(Volts vin, Watts pout) const {
  HEMP_CHECK_RANGE(pout.value() >= 0.0, "Bypass: negative load power");
  if (pout.value() == 0.0) return vin;
  // Solve vout = vin - Ron * (pout / vout)  =>  vout^2 - vin*vout + Ron*pout = 0.
  const double ron = params_.on_resistance.value();
  const double disc = vin.value() * vin.value() - 4.0 * ron * pout.value();
  HEMP_CHECK_RANGE(disc >= 0.0, "Bypass: load exceeds what the switch can pass");
  return Volts(0.5 * (vin.value() + std::sqrt(disc)));
}

double BypassSwitch::efficiency(Volts vin, Volts vout, Watts pout) const {
  HEMP_CHECK_RANGE(supports(vin, vout), "Bypass: vout must track vin");
  HEMP_CHECK_RANGE(pout.value() >= 0.0, "Bypass: negative load power");
  if (pout.value() == 0.0) return 1.0;  // no standby loss: it's just a switch
  const double iload = pout.value() / vout.value();
  const double loss = iload * iload * params_.on_resistance.value();
  return pout.value() / (pout.value() + loss);
}

}  // namespace hemp
