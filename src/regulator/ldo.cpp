#include "regulator/ldo.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hemp {

void LdoParams::validate() const {
  HEMP_REQUIRE(dropout.value() >= 0.0, "Ldo: dropout must be non-negative");
  HEMP_REQUIRE(quiescent_current.value() >= 0.0, "Ldo: Iq must be non-negative");
  HEMP_REQUIRE(min_output.value() > 0.0, "Ldo: min output must be positive");
  HEMP_REQUIRE(max_load.value() > 0.0, "Ldo: rated load must be positive");
}

Ldo::Ldo(const LdoParams& params) : params_(params) { params_.validate(); }

VoltageRange Ldo::output_range(Volts vin) const {
  const Volts max(std::max(vin.value() - params_.dropout.value(), 0.0));
  return {params_.min_output, max};
}

double Ldo::efficiency(Volts vin, Volts vout, Watts pout) const {
  HEMP_CHECK_RANGE(supports(vin, vout), "Ldo: operating point outside envelope");
  HEMP_CHECK_RANGE(pout.value() >= 0.0, "Ldo: negative load power");
  if (pout.value() == 0.0) return 0.0;
  // All load current passes through the series device at Vin, plus Iq:
  //   Pin = Vin * (Iload + Iq),  eta = Vout*Iload / Pin.
  const double iload = pout.value() / vout.value();
  const double iin = iload + params_.quiescent_current.value();
  return pout.value() / (vin.value() * iin);
}

}  // namespace hemp
