// A bank of candidate regulators with selection helpers.
//
// The holistic optimizer compares LDO / SC / buck / bypass at each operating
// point (paper Fig. 6b, Fig. 7); the bank owns the models and answers "which
// regulator delivers the most output power here".
#pragma once

#include <optional>
#include <vector>

#include "regulator/regulator.hpp"

namespace hemp {

class RegulatorBank {
 public:
  RegulatorBank() = default;

  /// Take ownership of a regulator model.  Returns its index in the bank.
  std::size_t add(RegulatorPtr regulator);

  [[nodiscard]] std::size_t size() const { return regulators_.size(); }
  [[nodiscard]] const Regulator& at(std::size_t i) const;
  [[nodiscard]] const Regulator* find(RegulatorKind kind) const;

  struct Selection {
    const Regulator* regulator = nullptr;
    double efficiency = 0.0;
  };

  /// Most efficient regulator able to deliver `pout` at `vout` from `vin`;
  /// nullopt when none supports the point.
  [[nodiscard]] std::optional<Selection> best_for(Volts vin, Volts vout,
                                                  Watts pout) const;

  /// Build the bank studied in the paper: LDO + SC + buck (+ optional bypass).
  static RegulatorBank paper_bank(bool include_bypass = true);

 private:
  std::vector<RegulatorPtr> regulators_;
};

}  // namespace hemp
