// A bank of candidate regulators with selection helpers.
//
// The holistic optimizer compares LDO / SC / buck / bypass at each operating
// point (paper Fig. 6b, Fig. 7); the bank owns the models and answers "which
// regulator delivers the most output power here".
#pragma once

#include <optional>
#include <vector>

#include "common/audit.hpp"
#include "regulator/regulator.hpp"

namespace hemp {

class RegulatorBank {
 public:
  RegulatorBank() = default;

  /// Take ownership of a regulator model.  Returns its index in the bank.
  std::size_t add(RegulatorPtr regulator);

  [[nodiscard]] std::size_t size() const { return regulators_.size(); }
  [[nodiscard]] const Regulator& at(std::size_t i) const;
  [[nodiscard]] const Regulator* find(RegulatorKind kind) const;

  struct Selection {
    const Regulator* regulator = nullptr;
    double efficiency = 0.0;
  };

  /// Most efficient regulator able to deliver `pout` at `vout` from `vin`;
  /// nullopt when none supports the point.
  [[nodiscard]] std::optional<Selection> best_for(Volts vin, Volts vout,
                                                  Watts pout) const;

  /// Build the bank studied in the paper: LDO + SC + buck (+ optional bypass).
  static RegulatorBank paper_bank(bool include_bypass = true);

  /// Audit every candidate efficiency evaluated by best_for() (finite, in
  /// [0, 1]).  Defaults to the HEMP_AUDIT compile option.
  void set_audit(bool enabled) { audit_ = enabled; }
  [[nodiscard]] bool audit() const { return audit_; }

 private:
  std::vector<RegulatorPtr> regulators_;
  bool audit_ = audit_compiled_in();
  // best_for() is logically const; the auditor only tracks check counters.
  mutable InvariantAuditor auditor_{"RegulatorBank"};
};

}  // namespace hemp
