// Low-dropout linear regulator model (paper Fig. 3).
//
// The LDO drops Vin - Vout resistively, so its efficiency is fundamentally
// bounded by Vout / Vin regardless of load — the property that makes it
// useless for the paper's holistic gain (Sec. IV-A: "The LDO does not bring
// any efficiency improvement over raw solar cell").  Calibrated to ~45% at
// Vout = 0.55 V from a ~1.2 V solar input.
#pragma once

#include "regulator/regulator.hpp"

namespace hemp {

struct LdoParams {
  /// Minimum headroom required between input and output (pass-device dropout).
  Volts dropout{0.05};
  /// Quiescent current of the error amplifier / reference.
  Amps quiescent_current{3e-6};
  /// Smallest output the reference can regulate to.
  Volts min_output{0.2};
  /// Rated maximum load.
  Watts max_load{20e-3};

  void validate() const;
};

class Ldo final : public Regulator {
 public:
  explicit Ldo(const LdoParams& params = {});

  [[nodiscard]] RegulatorKind kind() const override { return RegulatorKind::kLdo; }
  [[nodiscard]] std::string_view name() const override { return "LDO"; }
  [[nodiscard]] VoltageRange output_range(Volts vin) const override;
  [[nodiscard]] double efficiency(Volts vin, Volts vout, Watts pout) const override;
  [[nodiscard]] Watts rated_load() const override { return params_.max_load; }

  [[nodiscard]] const LdoParams& params() const { return params_; }

 private:
  LdoParams params_;
};

}  // namespace hemp
