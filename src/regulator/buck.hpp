// Fully integrated buck converter model (paper Fig. 5 and the test chip of
// Sec. VII: 0.3-0.8 V output from a 1.2-1.5 V rail, 40-75% efficiency).
//
// Unlike the SC converter, a buck regulates continuously in Vout (no ratio
// quantization) but pays inductor/switch conduction loss that grows with the
// square of load current, plus switching loss on the power FETs (~ Vin^2 at a
// fixed modulation frequency) and a controller overhead.  This reproduces the
// paper's observation that the buck "performs better at high output power but
// shows equal or less efficiency at low output power" relative to the SC.
// Calibrated to 63% (full ~10 mW) / 58% (half load) at Vout = 0.55 V.
#pragma once

#include "regulator/regulator.hpp"

namespace hemp {

struct BuckParams {
  /// Effective series resistance of inductor + power switches.
  Ohms conduction_resistance{9.1};
  /// Switching-loss coefficient: P_sw = k * Vin^2 (fixed-frequency PWM).
  double switching_loss_per_v2 = 1.736e-3;  // W / V^2
  /// PWM controller + gate-driver quiescent power.
  Watts control_power{0.37e-3};
  /// Regulated output envelope.
  Volts min_output{0.3};
  Volts max_output{0.8};
  /// Supported input rail.
  Volts min_input{1.0};
  Volts max_input{1.6};
  /// Rated maximum load.
  Watts max_load{20e-3};

  void validate() const;
};

class BuckRegulator final : public Regulator {
 public:
  explicit BuckRegulator(const BuckParams& params = {});

  [[nodiscard]] RegulatorKind kind() const override { return RegulatorKind::kBuck; }
  [[nodiscard]] std::string_view name() const override { return "buck"; }
  [[nodiscard]] VoltageRange output_range(Volts vin) const override;
  [[nodiscard]] double efficiency(Volts vin, Volts vout, Watts pout) const override;
  [[nodiscard]] Watts rated_load() const override { return params_.max_load; }

  [[nodiscard]] const BuckParams& params() const { return params_; }

 private:
  BuckParams params_;
};

}  // namespace hemp
