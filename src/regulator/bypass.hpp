// Regulator bypass path (paper Secs. IV-B, VI-B, VII).
//
// Under low light or at the tail of a sprint the SoC shorts the solar node
// directly to the processor rail through a power switch, eliminating
// conversion loss at the cost of giving up voltage regulation (Vout follows
// Vin).  Modelled as a switch with a small on-resistance.
#pragma once

#include "regulator/regulator.hpp"

namespace hemp {

struct BypassParams {
  /// On-resistance of the bypass power switch.
  Ohms on_resistance{1.0};
  /// Voltage tolerance: the bypass "supports" vout only when it equals vin
  /// within this tolerance (minus the IR drop, handled by the simulator).
  Volts tie_tolerance{0.15};
  Watts max_load{30e-3};

  void validate() const;
};

class BypassSwitch final : public Regulator {
 public:
  explicit BypassSwitch(const BypassParams& params = {});

  [[nodiscard]] RegulatorKind kind() const override { return RegulatorKind::kBypass; }
  [[nodiscard]] std::string_view name() const override { return "bypass"; }
  [[nodiscard]] VoltageRange output_range(Volts vin) const override;
  [[nodiscard]] double efficiency(Volts vin, Volts vout, Watts pout) const override;
  [[nodiscard]] Watts rated_load() const override { return params_.max_load; }

  /// Output voltage after the IR drop when delivering `pout` from `vin`.
  [[nodiscard]] Volts dropped_output(Volts vin, Watts pout) const;

  [[nodiscard]] const BypassParams& params() const { return params_; }

 private:
  BypassParams params_;
};

}  // namespace hemp
