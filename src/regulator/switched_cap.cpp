#include "regulator/switched_cap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hemp {

void SwitchedCapParams::validate() const {
  HEMP_REQUIRE(!ratios.empty(), "SwitchedCap: need at least one ratio");
  for (double r : ratios) {
    HEMP_REQUIRE(r > 0.0 && r <= 1.0, "SwitchedCap: ratios must be in (0, 1]");
  }
  HEMP_REQUIRE(std::is_sorted(ratios.rbegin(), ratios.rend()),
               "SwitchedCap: ratios must be sorted descending");
  HEMP_REQUIRE(regulation_margin.value() >= 0.0,
               "SwitchedCap: regulation margin must be non-negative");
  HEMP_REQUIRE(control_power.value() >= 0.0,
               "SwitchedCap: control power must be non-negative");
  HEMP_REQUIRE(switching_loss_factor >= 0.0 && switching_loss_factor < 1.0,
               "SwitchedCap: switching loss factor must be in [0, 1)");
  HEMP_REQUIRE(min_output.value() > 0.0, "SwitchedCap: min output must be positive");
  HEMP_REQUIRE(max_load.value() > 0.0, "SwitchedCap: rated load must be positive");
}

SwitchedCapRegulator::SwitchedCapRegulator(const SwitchedCapParams& params)
    : params_(params) {
  params_.validate();
}

VoltageRange SwitchedCapRegulator::output_range(Volts vin) const {
  // Highest reachable output comes from the largest ratio.
  const double r_max = params_.ratios.front();
  const Volts max(r_max * vin.value() - params_.regulation_margin.value());
  return {params_.min_output, max};
}

double SwitchedCapRegulator::active_ratio(Volts vin, Volts vout) const {
  HEMP_CHECK_RANGE(vin.value() > 0.0, "SwitchedCap: non-positive input voltage");
  // Ratios are descending; the best (highest eta_lin) configuration is the
  // smallest ideal output still able to regulate vout.
  double best = 0.0;
  for (double r : params_.ratios) {
    if (r * vin.value() >= vout.value() + params_.regulation_margin.value()) {
      best = r;  // keep scanning: later (smaller) ratios are more efficient
    }
  }
  HEMP_CHECK_RANGE(best > 0.0, "SwitchedCap: requested output above all ratio envelopes");
  return best;
}

double SwitchedCapRegulator::efficiency(Volts vin, Volts vout, Watts pout) const {
  HEMP_CHECK_RANGE(supports(vin, vout), "SwitchedCap: operating point outside envelope");
  HEMP_CHECK_RANGE(pout.value() >= 0.0, "SwitchedCap: negative load power");
  if (pout.value() == 0.0) return 0.0;
  const double r = active_ratio(vin, vout);
  const double eta_lin = vout.value() / (r * vin.value());
  const double loss = params_.control_power.value() +
                      params_.switching_loss_factor * pout.value();
  const double eta_sw = pout.value() / (pout.value() + loss);
  return eta_lin * eta_sw;
}

}  // namespace hemp
