// Abstract on-chip voltage regulator interface.
//
// The holistic optimizer (paper Secs. IV-V) treats a regulator purely as an
// efficiency surface eta(Vin, Vout, Pout) plus an operating envelope; the
// concrete LDO / switched-capacitor / buck models (Figs. 3-5) live behind this
// interface so optimizers, schedulers and the transient simulator can swap
// them freely.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/units.hpp"

namespace hemp {

enum class RegulatorKind { kLdo, kSwitchedCap, kBuck, kBypass };

std::string to_string(RegulatorKind k);

/// Inclusive output-voltage envelope at a given input voltage.
struct VoltageRange {
  Volts min;
  Volts max;
  [[nodiscard]] bool contains(Volts v) const { return v >= min && v <= max; }
};

class Regulator {
 public:
  virtual ~Regulator() = default;

  [[nodiscard]] virtual RegulatorKind kind() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Supported output range for input voltage `vin`.
  [[nodiscard]] virtual VoltageRange output_range(Volts vin) const = 0;

  /// True when the regulator can deliver `vout` from `vin`.
  [[nodiscard]] virtual bool supports(Volts vin, Volts vout) const;

  /// Conversion efficiency in [0, 1] when delivering `pout` at `vout` from
  /// `vin`.  Throws RangeError when (vin, vout) is outside the envelope.
  /// `pout == 0` returns 0 whenever the regulator burns standby power.
  [[nodiscard]] virtual double efficiency(Volts vin, Volts vout, Watts pout) const = 0;

  /// Power drawn from the input rail to deliver `pout`: pout / eta + standby.
  [[nodiscard]] virtual Watts input_power(Volts vin, Volts vout, Watts pout) const;

  /// Output power delivered when the input rail supplies `pin`.
  /// Inverts input_power() numerically; concrete models may override with a
  /// closed form.
  [[nodiscard]] virtual Watts output_power(Volts vin, Volts vout, Watts pin) const;

  /// Largest load the regulator is rated for.
  [[nodiscard]] virtual Watts rated_load() const = 0;
};

using RegulatorPtr = std::unique_ptr<Regulator>;

}  // namespace hemp
