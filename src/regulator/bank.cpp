#include "regulator/bank.hpp"

#include <memory>
#include <utility>

#include "common/error.hpp"
#include "regulator/buck.hpp"
#include "regulator/bypass.hpp"
#include "regulator/ldo.hpp"
#include "regulator/switched_cap.hpp"

namespace hemp {

std::size_t RegulatorBank::add(RegulatorPtr regulator) {
  HEMP_REQUIRE(regulator != nullptr, "RegulatorBank: null regulator");
  regulators_.push_back(std::move(regulator));
  return regulators_.size() - 1;
}

const Regulator& RegulatorBank::at(std::size_t i) const {
  HEMP_CHECK_RANGE(i < regulators_.size(), "RegulatorBank: index out of range");
  return *regulators_[i];
}

const Regulator* RegulatorBank::find(RegulatorKind kind) const {
  for (const auto& r : regulators_) {
    if (r->kind() == kind) return r.get();
  }
  return nullptr;
}

std::optional<RegulatorBank::Selection> RegulatorBank::best_for(Volts vin, Volts vout,
                                                                Watts pout) const {
  std::optional<Selection> best;
  for (const auto& r : regulators_) {
    if (!r->supports(vin, vout)) continue;
    if (pout > r->rated_load()) continue;
    const double eta = r->efficiency(vin, vout, pout);
    if (audit_) auditor_.check_efficiency(r->name(), eta);
    if (!best || eta > best->efficiency) best = Selection{r.get(), eta};
  }
  return best;
}

RegulatorBank RegulatorBank::paper_bank(bool include_bypass) {
  RegulatorBank bank;
  bank.add(std::make_unique<Ldo>());
  bank.add(std::make_unique<SwitchedCapRegulator>());
  bank.add(std::make_unique<BuckRegulator>());
  if (include_bypass) bank.add(std::make_unique<BypassSwitch>());
  return bank;
}

}  // namespace hemp
