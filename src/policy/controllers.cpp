#include "policy/controllers.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hemp {

// --- JobTracker -------------------------------------------------------------

JobTracker::JobTracker(const PolicyWorkload& workload, Seconds slack)
    : workload_(workload), slack_(slack), next_submit_(workload.phase) {
  HEMP_REQUIRE(workload.job_cycles >= 0.0, "JobTracker: negative job cycles");
  if (workload.job_cycles > 0.0) {
    HEMP_REQUIRE(workload.period.value() > 0.0 && workload.deadline.value() > 0.0,
                 "JobTracker: jobs need positive period and deadline");
  }
}

void JobTracker::update(Seconds now, double cycles_retired) {
  if (workload_.job_cycles <= 0.0) return;
  while (now >= next_submit_) {
    if (pending_ == 0) front_deadline_ = next_submit_ + workload_.deadline;
    ++pending_;
    next_submit_ += workload_.period;
    ++submitted_;
  }
  while (pending_ > 0) {
    if (!base_valid_) {
      progress_base_ = cycles_retired;
      base_valid_ = true;
    }
    const double done = cycles_retired - progress_base_;
    if (done >= workload_.job_cycles) {
      // Finished by the time we looked; on time iff we are not past the
      // deadline (hints schedule a look exactly at the deadline).
      if (now <= front_deadline_ + slack_) ++completed_; else ++missed_;
      --pending_;
      front_deadline_ += workload_.period;
      progress_base_ += workload_.job_cycles;  // leftover rolls into the next job
      continue;
    }
    if (now >= front_deadline_ + slack_) {
      ++missed_;
      --pending_;
      front_deadline_ += workload_.period;
      progress_base_ = cycles_retired;  // abandoned partial work is wasted
      continue;
    }
    break;
  }
  if (pending_ == 0) base_valid_ = false;
}

void JobTracker::hint(SocStepHint& hint) const {
  if (workload_.job_cycles <= 0.0) return;
  hint.deadline(next_submit_.value());
  if (pending_ > 0) hint.deadline(front_deadline_.value());
}

// --- ManagedPolicyController ------------------------------------------------

ManagedPolicyController::ManagedPolicyController(const SystemModel& model,
                                                 const EnergyManagerParams& params,
                                                 const PolicyWorkload& workload)
    : manager_(model, params),
      jobs_(manager_, workload.job_cycles, workload.period, workload.deadline,
            workload.phase) {}

void ManagedPolicyController::on_start(const SocState& state, SocCommand& cmd) {
  jobs_.on_start(state, cmd);
}

void ManagedPolicyController::on_tick(const SocState& state, SocCommand& cmd) {
  jobs_.on_tick(state, cmd);
}

void ManagedPolicyController::on_comparator(const ComparatorEvent& event,
                                            const SocState& state,
                                            SocCommand& cmd) {
  jobs_.on_comparator(event, state, cmd);
}

void ManagedPolicyController::step_hint(const SocState& state,
                                        SocStepHint& hint) const {
  jobs_.step_hint(state, hint);
}

PolicyJobStats ManagedPolicyController::job_stats() const {
  return {jobs_.jobs_submitted(), manager_.jobs_completed(),
          manager_.jobs_missed()};
}

// --- GreedyMppController ----------------------------------------------------

GreedyMppController::GreedyMppController(const SystemModel& model,
                                         const MppTrackerParams& params,
                                         const PolicyWorkload& workload)
    : tracker_(model, params), jobs_(workload) {}

void GreedyMppController::on_start(const SocState& state, SocCommand& cmd) {
  tracker_.on_start(state, cmd);
  cmd.path = PowerPath::kRegulated;
  cmd.run = true;
  jobs_.update(state.time, state.cycles_retired);
}

void GreedyMppController::on_tick(const SocState& state, SocCommand& cmd) {
  jobs_.update(state.time, state.cycles_retired);
  tracker_.on_tick(state, cmd);
  cmd.path = PowerPath::kRegulated;
  cmd.run = true;
}

void GreedyMppController::step_hint(const SocState& state,
                                    SocStepHint& hint) const {
  hint.event_driven = true;
  tracker_.step_hint(state, hint);
  jobs_.hint(hint);
}

// --- DutyCycleController ----------------------------------------------------

DutyCycleController::DutyCycleController(const SystemModel& model, double duty,
                                         Seconds window,
                                         const PolicyWorkload& workload)
    : duty_(duty), window_(window), jobs_(workload) {
  HEMP_REQUIRE(duty > 0.0 && duty <= 1.0, "DutyCycleController: duty in (0, 1]");
  HEMP_REQUIRE(window.value() > 0.0, "DutyCycleController: positive window");
  op_ = MepOptimizer(model).conventional();
  HEMP_REQUIRE(op_.feasible, "DutyCycleController: conventional MEP infeasible");
}

void DutyCycleController::apply(const SocState& state, SocCommand& cmd) {
  const double phase = std::fmod(state.time.value(), window_.value());
  cmd.path = PowerPath::kRegulated;
  cmd.vdd_target = op_.vdd;
  cmd.frequency = op_.frequency;
  cmd.run = phase < duty_ * window_.value();
}

void DutyCycleController::on_start(const SocState& state, SocCommand& cmd) {
  apply(state, cmd);
  jobs_.update(state.time, state.cycles_retired);
}

void DutyCycleController::on_tick(const SocState& state, SocCommand& cmd) {
  jobs_.update(state.time, state.cycles_retired);
  apply(state, cmd);
}

double DutyCycleController::next_edge(double t) const {
  const double w = window_.value();
  const double k = std::floor(t / w);
  const double phase = t - k * w;
  const double edge = phase < duty_ * w ? (k + duty_) * w : (k + 1.0) * w;
  // Guard the exact-boundary case so a hinted deadline always advances time.
  return edge > t ? edge : t + 1e-9;
}

void DutyCycleController::step_hint(const SocState& state,
                                    SocStepHint& hint) const {
  hint.event_driven = true;
  hint.deadline(next_edge(state.time.value()));
  jobs_.hint(hint);
}

}  // namespace hemp
