#include "policy/registry.hpp"

#include <utility>

#include "common/error.hpp"

namespace hemp {

PolicyRegistry& PolicyRegistry::global() {
  // Function-local static: built (and filled with the builtin zoo) exactly
  // once, thread-safely, on first use.
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    register_builtin_policies(*r);
    return r;
  }();
  return *registry;
}

void PolicyRegistry::add(std::unique_ptr<EnergyPolicy> policy) {
  HEMP_REQUIRE(policy != nullptr, "PolicyRegistry: null policy");
  std::string name = policy->name();
  HEMP_REQUIRE(!name.empty(), "PolicyRegistry: policy with empty name");
  const auto [it, inserted] = policies_.emplace(std::move(name), std::move(policy));
  if (!inserted) {
    throw ModelError("PolicyRegistry: duplicate policy name '" + it->first +
                     "' (shadowing a registered policy is not allowed)");
  }
}

const EnergyPolicy& PolicyRegistry::at(const std::string& name) const {
  const EnergyPolicy* policy = find(name);
  if (policy == nullptr) {
    throw ModelError("PolicyRegistry: unknown policy '" + name +
                     "' (available: " + names_joined() + ")");
  }
  return *policy;
}

const EnergyPolicy* PolicyRegistry::find(const std::string& name) const {
  const auto it = policies_.find(name);
  return it == policies_.end() ? nullptr : it->second.get();
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(policies_.size());
  for (const auto& [name, policy] : policies_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::string PolicyRegistry::names_joined() const {
  std::string out;
  for (const auto& [name, policy] : policies_) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace hemp
