// Pluggable energy-management policies (the paper's contribution 2 opened up).
//
// The repo originally hardwired exactly two management schemes inside
// EnergyManager (max-performance MPP tracking and min-energy MEP hold).  This
// layer turns "which management policy?" into data: an EnergyPolicy names a
// strategy, builds a per-node SocController for the transient engines, and —
// for offline policies with a known sky — scores a node analytically instead
// of simulating it.  A name-keyed registry (policy/registry.hpp) lets
// scenarios, CLIs, and the tournament harness select policies by string.
//
// Three execution tiers, fastest first:
//   * batch_spec()      — policies expressible as the flattened EnergyManager
//     parameterization run on the SoA batch fleet kernel;
//   * make_controller() — every policy builds a SocController; controllers
//     that implement SocController::step_hint run on the single-node
//     surface-only fast path (policies opt in via fast_path());
//   * offline()         — policies that need the whole irradiance trace ahead
//     of time (the DP oracle) return an analytic per-node score.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/units.hpp"
#include "core/system_model.hpp"
#include "harvester/light_environment.hpp"
#include "sim/soc_system.hpp"

namespace hemp {

/// Periodic deadline-job workload one node runs (mirrors the fleet scenario's
/// job fields; cycles == 0 disables the workload).
struct PolicyWorkload {
  double job_cycles = 0.0;
  Seconds period{0.0};
  Seconds deadline{0.0};
  Seconds phase{0.0};
};

/// Everything a policy needs to build (or score) one node's controller.
struct PolicyContext {
  /// Holistic model of this node's cell + regulator + processor.  Non-owning;
  /// must outlive the built controller.
  const SystemModel* model = nullptr;
  PolicyWorkload workload{};
  Seconds day_length{0.0};
  Farads solar_capacitance{47e-6};
  Farads vdd_capacitance{10e-6};
  Volts solar_start_voltage{1.2};
  /// The node's sky, known ahead of time.  Required by offline policies;
  /// online policies must ignore it (they only observe the SocState).
  const IrradianceTrace* trace = nullptr;
};

/// Job accounting every policy controller reports after a run.
struct PolicyJobStats {
  int submitted = 0;
  int completed = 0;
  int missed = 0;
};

/// A SocController that also carries its own job accounting (the fleet
/// reduction reads these instead of poking concrete controller types).
class PolicyController : public SocController {
 public:
  [[nodiscard]] virtual PolicyJobStats job_stats() const = 0;
};

/// Flattened parameterization consumed by the batch fleet kernel: a policy
/// representable as the kernel's built-in manager lane (MPP tracking or MEP
/// hold plus the hysteretic low-light bypass rule) returns one of these and
/// rides the SoA fast path; everything else runs the reference engine.
struct BatchPolicySpec {
  bool min_energy = false;      ///< MEP hold instead of MPP-tracking DVFS
  bool bypass_enabled = true;   ///< false: never take the low-light bypass
  double bypass_enter_ratio = 0.9;  ///< enter bypass below ratio * crossover
  double bypass_exit_ratio = 1.2;   ///< leave bypass above ratio * crossover
};

/// Analytic per-node score returned by offline policies (the DP oracle):
/// the outcome the fleet reduction records *instead of* simulating the node.
struct OfflineScore {
  double cycles = 0.0;
  Joules harvested{0.0};   ///< energy available at MPP over the horizon
  Joules delivered{0.0};   ///< energy the schedule actually spends
  int jobs_submitted = 0;
  int jobs_completed = 0;
  int jobs_missed = 0;
  double deadline_hit_rate = 1.0;
  Seconds halted{0.0};
};

class EnergyPolicy {
 public:
  virtual ~EnergyPolicy() = default;

  /// Registry key ([a-z0-9_], stable across releases).
  [[nodiscard]] virtual std::string name() const = 0;
  /// One-line human description (printed by --help and the tournament).
  [[nodiscard]] virtual std::string description() const = 0;

  /// Offline analytic score for a node with a known sky; nullopt for online
  /// policies.  When this returns a value the fleet records it verbatim and
  /// never builds a controller.  `ctx.trace` must be non-null.
  [[nodiscard]] virtual std::optional<OfflineScore> offline(
      const PolicyContext& ctx) const {
    (void)ctx;
    return std::nullopt;
  }

  /// Flattened spec for the batch fleet kernel; nullopt -> reference engine.
  [[nodiscard]] virtual std::optional<BatchPolicySpec> batch_spec() const {
    return std::nullopt;
  }

  /// True when the policy's controller implements a sound
  /// SocController::step_hint and single-node runs may enable
  /// SocConfig::fast_path.  The two ported EnergyManager modes return false
  /// here: the legacy fleet path is the bit-compatibility contract and stays
  /// on the dense reference loop.
  [[nodiscard]] virtual bool fast_path() const { return false; }

  /// Build a fresh controller for one node.  The returned controller keeps a
  /// reference to ctx.model and must not outlive it.
  [[nodiscard]] virtual std::unique_ptr<PolicyController> make_controller(
      const PolicyContext& ctx) const = 0;
};

}  // namespace hemp
