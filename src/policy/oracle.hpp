// Offline DP oracle: the optimal clairvoyant schedule for one node.
//
// Given the whole irradiance trace up front, dynamic programming over a
// discretized (time, stored-energy) grid computes the operating-point
// schedule (off / run at a DVFS ladder point / run at the conventional MEP)
// that maximizes retired cycles over the day.  The model is deliberately
// optimistic — harvest lands at the MPP every slot and the power path is
// lossless — so the oracle's score is a true upper bound on what any online
// policy can achieve under the transient engines (which pay regulator loss,
// tracking error, and rail dynamics).  What keeps the bound non-trivial is
// storage: energy above the cap is lost, so the DP must *spend* ahead of
// bright slots rather than hoard, exactly the scheduling question the online
// policies face.
//
// Formulation (DESIGN.md "policy layer" has the derivation):
//   state   e in [0, Emax], slots k = 0..K-1 of width dt = horizon / K
//   harvest h_k = Pmpp(g(t_k)) * dt   (slot-midpoint irradiance)
//   actions a with rail power p_a and cycle rate f_a (p_off = 0)
//   V_K(e) = 0
//   V_k(e) = max over a with p_a * dt <= e + h_k of
//            f_a * dt + V_{k+1}( min(e + h_k - p_a * dt, Emax) )
// with V linearly interpolated between energy levels.  The forward pass
// replays greedy-argmax decisions on the *continuous* energy state, so the
// reported score is achievable within the optimistic physics rather than an
// interpolation artifact; jobs are then adjudicated on the resulting cycle
// profile with one-slot slack (policy/controllers.hpp JobTracker).
#pragma once

#include <cstdint>
#include <vector>

#include "core/system_model.hpp"
#include "harvester/light_environment.hpp"
#include "policy/energy_policy.hpp"

namespace hemp {

struct DpOracleParams {
  int time_slots = 240;    ///< K: schedule granularity over the horizon
  int energy_levels = 48;  ///< M: stored-energy grid resolution
  /// Run actions: `ladder_points` voltages spanning the processor's DVFS
  /// range up to `vdd_ceiling`, plus the conventional MEP point.
  int ladder_points = 8;
  Volts vdd_ceiling{0.8};

  void validate() const;
};

class DpOracle {
 public:
  explicit DpOracle(const SystemModel& model, DpOracleParams params = {});

  /// One schedulable operating point.
  struct Action {
    bool run = false;
    Volts vdd{0.0};
    Hertz frequency{0.0};
    Watts power{0.0};  ///< rail draw at (vdd, max frequency)
  };

  struct Solution {
    double cycles = 0.0;        ///< retired cycles of the forward schedule
    Joules harvest_available{0.0};  ///< sum of per-slot MPP energy
    Joules spent{0.0};          ///< energy the schedule draws
    Seconds dt{0.0};            ///< slot width
    std::vector<std::uint8_t> schedule;  ///< action index per slot
    std::vector<Action> actions;
    PolicyJobStats jobs{};
    double deadline_hit_rate = 1.0;
    Seconds off_time{0.0};      ///< total time spent in the off action
  };

  [[nodiscard]] Solution solve(const IrradianceTrace& trace, Seconds horizon,
                               Farads solar_capacitance, Volts start_voltage,
                               const PolicyWorkload& workload) const;

  [[nodiscard]] const std::vector<Action>& actions() const { return actions_; }

 private:
  const SystemModel* model_;
  DpOracleParams params_;
  std::vector<Action> actions_;  ///< index 0 is always "off"
  Volts v_storage_max_{0.0};     ///< full-sun open-circuit voltage (cap ceiling)
};

}  // namespace hemp
