// Concrete controllers behind the built-in policy zoo (policy/builtin.cpp).
//
// Three shapes:
//   * ManagedPolicyController — the full EnergyManager state machine behind
//     the PolicyController interface (ported legacy modes, hysteresis
//     variants, EDF sprinting);
//   * GreedyMppController — MPP-tracking DVFS with no management at all
//     (no MEP hold, no bypass, no sprints): the "chase the sun" ablation;
//   * DutyCycleController — a fixed on/off duty cycle at the conventional
//     MEP operating point: the classic duty-cycled-sensor baseline the
//     related work manages against.
// GreedyMppController and DutyCycleController execute jobs implicitly (the
// core runs whenever the policy says run); JobTracker charges retired cycles
// against the periodic workload to adjudicate deadlines.
#pragma once

#include "core/energy_manager.hpp"
#include "core/mep_optimizer.hpp"
#include "core/mpp_tracker.hpp"
#include "policy/energy_policy.hpp"

namespace hemp {

/// Charges retired cycles against the periodic deadline workload for
/// controllers that have no explicit job queue.  Jobs are sequential: cycles
/// retire against the oldest submitted unfinished job; a job completes on
/// time when its cycles retire before its absolute deadline (+slack), and a
/// job whose deadline passes first is dropped as missed (partial work lost).
/// `slack` absorbs discretization: callers that only observe coarse slot
/// boundaries (the DP oracle) pass one slot so a job finishing inside the
/// deadline slot still counts.
class JobTracker {
 public:
  JobTracker(const PolicyWorkload& workload, Seconds slack = Seconds(0.0));

  /// Advance the accounting to `now` given the cumulative retired cycles.
  void update(Seconds now, double cycles_retired);

  /// Bound the next step: the accounting state next changes at the next
  /// submission or the active job's deadline.
  void hint(SocStepHint& hint) const;

  [[nodiscard]] PolicyJobStats stats() const {
    return {submitted_, completed_, missed_};
  }

 private:
  PolicyWorkload workload_;
  Seconds slack_;
  Seconds next_submit_;
  /// Submitted, unadjudicated jobs.  Deadlines are strictly periodic, so the
  /// queue is just a count plus the oldest job's absolute deadline — no
  /// per-job storage (keeps update() allocation-free on the hot path).
  int pending_ = 0;
  Seconds front_deadline_{0.0};
  int submitted_ = 0;
  int completed_ = 0;
  int missed_ = 0;
  /// cycles_retired baseline the oldest pending job's progress counts from.
  double progress_base_ = 0.0;
  bool base_valid_ = false;
};

/// The full EnergyManager behind the PolicyController interface: an owned
/// manager (mode / hysteresis / queue discipline from `params`) fed by the
/// periodic job workload.  Built exactly like the pre-policy fleet wired it,
/// so the ported legacy modes reproduce the original summary hashes.
class ManagedPolicyController final : public PolicyController {
 public:
  ManagedPolicyController(const SystemModel& model,
                          const EnergyManagerParams& params,
                          const PolicyWorkload& workload);

  void on_start(const SocState& state, SocCommand& cmd) override;
  void on_tick(const SocState& state, SocCommand& cmd) override;
  void on_comparator(const ComparatorEvent& event, const SocState& state,
                     SocCommand& cmd) override;
  void step_hint(const SocState& state, SocStepHint& hint) const override;

  [[nodiscard]] PolicyJobStats job_stats() const override;

 private:
  EnergyManager manager_;
  PeriodicJobController jobs_;
};

/// MPP-tracking DVFS and nothing else: always regulated, always running,
/// never bypasses, never sprints — jobs ride the ambient throughput.
class GreedyMppController final : public PolicyController {
 public:
  GreedyMppController(const SystemModel& model, const MppTrackerParams& params,
                      const PolicyWorkload& workload);

  void on_start(const SocState& state, SocCommand& cmd) override;
  void on_tick(const SocState& state, SocCommand& cmd) override;
  void step_hint(const SocState& state, SocStepHint& hint) const override;

  [[nodiscard]] PolicyJobStats job_stats() const override {
    return jobs_.stats();
  }

 private:
  MppTrackingController tracker_;
  JobTracker jobs_;
};

/// Fixed duty cycle at the conventional MEP operating point: run the core
/// for `duty` of every window, idle the rest, independent of the harvest.
class DutyCycleController final : public PolicyController {
 public:
  DutyCycleController(const SystemModel& model, double duty, Seconds window,
                      const PolicyWorkload& workload);

  void on_start(const SocState& state, SocCommand& cmd) override;
  void on_tick(const SocState& state, SocCommand& cmd) override;
  void step_hint(const SocState& state, SocStepHint& hint) const override;

  [[nodiscard]] PolicyJobStats job_stats() const override {
    return jobs_.stats();
  }

 private:
  void apply(const SocState& state, SocCommand& cmd);
  [[nodiscard]] double next_edge(double t) const;

  double duty_;
  Seconds window_;
  MepPoint op_;
  JobTracker jobs_;
};

}  // namespace hemp
