// Name-keyed registry of energy-management policies.
//
// The registry is the single place scenarios, CLIs, tests, and the tournament
// harness resolve policy names.  The global() instance comes pre-loaded with
// the built-in zoo (policy/builtin.cpp); experiments may register additional
// policies at startup.  Lookups are read-only and thread-safe after
// registration; registration itself is not thread-safe (do it before
// spawning workers, as main() and static initializers do).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "policy/energy_policy.hpp"

namespace hemp {

class PolicyRegistry {
 public:
  PolicyRegistry() = default;

  PolicyRegistry(const PolicyRegistry&) = delete;
  PolicyRegistry& operator=(const PolicyRegistry&) = delete;

  /// Process-wide registry with every built-in policy pre-registered.
  static PolicyRegistry& global();

  /// Register a policy under policy->name().  Throws ModelError on a
  /// duplicate name — shadowing an existing policy silently would make
  /// scenario files mean different things in different builds.
  void add(std::unique_ptr<EnergyPolicy> policy);

  /// Resolve `name` or throw ModelError whose message lists every registered
  /// name (scenario typos should tell the user what *is* available).
  [[nodiscard]] const EnergyPolicy& at(const std::string& name) const;

  /// Resolve `name` or nullptr (no throw).
  [[nodiscard]] const EnergyPolicy* find(const std::string& name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const { return policies_.size(); }

  /// Sorted "a, b, c" rendering of names() (error messages, --help).
  [[nodiscard]] std::string names_joined() const;

 private:
  std::map<std::string, std::unique_ptr<EnergyPolicy>> policies_;
};

/// Register the built-in policy zoo into `registry` (idempotent only in the
/// sense that global() calls it exactly once; adding twice throws).
void register_builtin_policies(PolicyRegistry& registry);

}  // namespace hemp
