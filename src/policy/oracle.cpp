#include "policy/oracle.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/mep_optimizer.hpp"
#include "policy/controllers.hpp"

namespace hemp {

void DpOracleParams::validate() const {
  HEMP_REQUIRE(time_slots >= 2, "DpOracle: need at least 2 time slots");
  HEMP_REQUIRE(energy_levels >= 2, "DpOracle: need at least 2 energy levels");
  HEMP_REQUIRE(ladder_points >= 1, "DpOracle: need at least 1 ladder point");
  HEMP_REQUIRE(vdd_ceiling.value() > 0.0, "DpOracle: bad vdd ceiling");
}

DpOracle::DpOracle(const SystemModel& model, DpOracleParams params)
    : model_(&model), params_(params) {
  params_.validate();
  const Processor& proc = model.processor();
  // Action 0 is "off": nothing drawn, nothing retired, always feasible.
  actions_.push_back(Action{});
  // DVFS ladder: `ladder_points` voltages spanning [Vmin, ceiling].
  const double v_lo = proc.min_voltage().value();
  const double v_hi = std::min(proc.max_voltage().value(),
                               params_.vdd_ceiling.value());
  HEMP_REQUIRE(v_hi >= v_lo, "DpOracle: vdd ceiling below the DVFS range");
  const int n = params_.ladder_points;
  for (int i = 0; i < n; ++i) {
    const double v =
        n == 1 ? v_hi : v_lo + (v_hi - v_lo) * static_cast<double>(i) / (n - 1);
    Action a;
    a.run = true;
    a.vdd = Volts(v);
    a.frequency = proc.max_frequency(a.vdd);
    a.power = proc.power({a.vdd, a.frequency});
    actions_.push_back(a);
  }
  // The conventional MEP point: the lowest-energy-per-cycle throttle, which
  // the evenly spaced ladder usually straddles without hitting.
  const MepPoint mep = MepOptimizer(model).conventional();
  if (mep.feasible && mep.vdd.value() <= v_hi) {
    Action a;
    a.run = true;
    a.vdd = mep.vdd;
    a.frequency = mep.frequency;
    a.power = proc.power({a.vdd, a.frequency});
    actions_.push_back(a);
  }
  v_storage_max_ = model.cell().open_circuit_voltage(1.0);
}

DpOracle::Solution DpOracle::solve(const IrradianceTrace& trace,
                                   Seconds horizon, Farads solar_capacitance,
                                   Volts start_voltage,
                                   const PolicyWorkload& workload) const {
  HEMP_REQUIRE(horizon.value() > 0.0, "DpOracle: positive horizon");
  HEMP_REQUIRE(solar_capacitance.value() > 0.0, "DpOracle: positive capacitance");
  const int slots = params_.time_slots;
  const int levels = params_.energy_levels;
  const double dt = horizon.value() / slots;
  const double c = solar_capacitance.value();
  const double e_max = 0.5 * c * v_storage_max_.value() * v_storage_max_.value();
  const double v0 = std::min(start_voltage.value(), v_storage_max_.value());
  const double e_start = 0.5 * c * v0 * v0;
  const double de = e_max / (levels - 1);

  // Per-slot harvest at the maximum power point (midpoint irradiance; the
  // 0.01-sun rounding keeps the exact MPP solves bounded and cache-served).
  std::vector<double> harvest(static_cast<std::size_t>(slots));
  double harvest_total = 0.0;
  for (int k = 0; k < slots; ++k) {
    const double t_mid = (k + 0.5) * dt;
    const double g =
        std::round(std::clamp(trace.at(Seconds(t_mid)), 0.0, 1.0) * 100.0) / 100.0;
    const double p = g > 0.0 ? model_->mpp(g).power.value() : 0.0;
    harvest[static_cast<std::size_t>(k)] = p * dt;
    harvest_total += p * dt;
  }

  const auto interp = [&](const std::vector<double>& v, double e) {
    const double x = std::clamp(e, 0.0, e_max) / de;
    const int lo = std::min(static_cast<int>(x), levels - 2);
    const double frac = x - lo;
    const std::size_t i = static_cast<std::size_t>(lo);
    return v[i] * (1.0 - frac) + v[i + 1] * frac;
  };
  const auto best_action = [&](const std::vector<double>& future, double e,
                               int k, double* best_value) {
    const double avail = e + harvest[static_cast<std::size_t>(k)];
    int best = 0;
    double best_v = interp(future, std::min(avail, e_max));  // "off"
    for (std::size_t a = 1; a < actions_.size(); ++a) {
      const double spend = actions_[a].power.value() * dt;
      if (spend > avail) continue;
      const double v = actions_[a].frequency.value() * dt +
                       interp(future, std::min(avail - spend, e_max));
      if (v > best_v) {
        best_v = v;
        best = static_cast<int>(a);
      }
    }
    if (best_value != nullptr) *best_value = best_v;
    return best;
  };
  // Backward value pass, keeping every slot's table: the forward pass needs
  // V_{k+1} at each slot k to replay the argmax decisions.
  std::vector<std::vector<double>> tables(static_cast<std::size_t>(slots) + 1,
                                          std::vector<double>(levels, 0.0));
  for (int k = slots - 1; k >= 0; --k) {
    for (int m = 0; m < levels; ++m) {
      double v = 0.0;
      best_action(tables[static_cast<std::size_t>(k) + 1], m * de, k, &v);
      tables[static_cast<std::size_t>(k)][static_cast<std::size_t>(m)] = v;
    }
  }

  // Forward pass on the continuous energy state: replay the argmax decision
  // per slot so the reported schedule is self-consistent (the DP value is an
  // interpolated bound; the forward score is what the schedule achieves).
  Solution sol;
  sol.dt = Seconds(dt);
  sol.actions = actions_;
  sol.schedule.resize(static_cast<std::size_t>(slots));
  sol.harvest_available = Joules(harvest_total);
  // Job accounting with one slot of slack: the DP only observes slot
  // boundaries, so a deadline inside slot k adjudicates at the end of it.
  JobTracker jobs(workload, Seconds(dt));
  double e = e_start;
  double cycles = 0.0;
  double spent = 0.0;
  double off_time = 0.0;
  for (int k = 0; k < slots; ++k) {
    const int a = best_action(tables[static_cast<std::size_t>(k) + 1], e, k, nullptr);
    sol.schedule[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(a);
    const Action& act = actions_[static_cast<std::size_t>(a)];
    const double avail = e + harvest[static_cast<std::size_t>(k)];
    const double spend = act.power.value() * dt;
    e = std::min(avail - spend, e_max);
    cycles += act.frequency.value() * dt;
    spent += spend;
    if (!act.run) off_time += dt;
    jobs.update(Seconds((k + 1) * dt), cycles);
  }
  jobs.update(horizon, cycles);
  sol.cycles = cycles;
  sol.spent = Joules(spent);
  sol.off_time = Seconds(off_time);
  sol.jobs = jobs.stats();
  const int adjudicated = sol.jobs.completed + sol.jobs.missed;
  sol.deadline_hit_rate =
      adjudicated > 0
          ? static_cast<double>(sol.jobs.completed) / adjudicated
          : 1.0;
  return sol;
}

}  // namespace hemp
