// The built-in energy-policy zoo.
//
// Registered names (stable; scenario files and CLIs key on them):
//   mpp_track      — ported legacy max-performance mode (EnergyManager,
//                    kMaxPerformance): MPP-tracking DVFS + bypass + sprints.
//   mep_hold       — ported legacy min-energy mode (EnergyManager,
//                    kMinEnergy): hold the holistic MEP + bypass + sprints.
//   greedy_mpp     — MPP-chasing DVFS with no management at all (no MEP
//                    logic, no bypass, no sprint planning).
//   hyst_eager     — mpp_track with an eager bypass window (enter 1.1x /
//                    exit 1.5x crossover): prefers the unregulated path.
//   hyst_reluctant — mpp_track with a reluctant window (enter 0.5x / exit
//                    0.7x): clings to the regulator deep into low light.
//   edf_sprint     — mpp_track with the job queue drained earliest-deadline-
//                    first against absolute deadlines (stale jobs dropped).
//   duty25 / duty50 — fixed 25% / 50% duty cycle at the conventional MEP
//                    operating point, windows tied to the job period.
//   oracle_dp      — clairvoyant DP upper bound (policy/oracle.hpp); offline
//                    scored, never simulated.
//
// The two ported modes are the bit-compatibility contract: they construct
// exactly the EnergyManager + PeriodicJobController pair the pre-policy
// fleet hardwired (default params, fast path off), so legacy scenarios hash
// identically.  Every other policy is new surface and opts into the
// single-node fast path and/or the batch kernel where its semantics allow.

#include <memory>
#include <utility>

#include "common/error.hpp"
#include "policy/controllers.hpp"
#include "policy/oracle.hpp"
#include "policy/registry.hpp"

namespace hemp {

namespace {

/// EnergyManager-backed policies: the ported legacy modes plus every variant
/// expressible as a manager parameterization (hysteresis windows, EDF).
class ManagedPolicy final : public EnergyPolicy {
 public:
  ManagedPolicy(std::string name, std::string description,
                EnergyManagerParams params,
                std::optional<BatchPolicySpec> batch, bool fast_path)
      : name_(std::move(name)), description_(std::move(description)),
        params_(params), batch_(batch), fast_path_(fast_path) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string description() const override { return description_; }
  [[nodiscard]] std::optional<BatchPolicySpec> batch_spec() const override {
    return batch_;
  }
  [[nodiscard]] bool fast_path() const override { return fast_path_; }

  [[nodiscard]] std::unique_ptr<PolicyController> make_controller(
      const PolicyContext& ctx) const override {
    HEMP_REQUIRE(ctx.model != nullptr, "ManagedPolicy: null model");
    return std::make_unique<ManagedPolicyController>(*ctx.model, params_,
                                                     ctx.workload);
  }

 private:
  std::string name_;
  std::string description_;
  EnergyManagerParams params_;
  std::optional<BatchPolicySpec> batch_;
  bool fast_path_;
};

class GreedyMppPolicy final : public EnergyPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "greedy_mpp"; }
  [[nodiscard]] std::string description() const override {
    return "MPP-chasing DVFS, no MEP/bypass/sprint management";
  }
  [[nodiscard]] bool fast_path() const override { return true; }

  [[nodiscard]] std::unique_ptr<PolicyController> make_controller(
      const PolicyContext& ctx) const override {
    HEMP_REQUIRE(ctx.model != nullptr, "GreedyMppPolicy: null model");
    MppTrackerParams params;
    params.solar_capacitance = ctx.solar_capacitance;
    return std::make_unique<GreedyMppController>(*ctx.model, params,
                                                 ctx.workload);
  }
};

class DutyCyclePolicy final : public EnergyPolicy {
 public:
  DutyCyclePolicy(std::string name, double duty)
      : name_(std::move(name)), duty_(duty) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string description() const override {
    return "fixed " + std::to_string(static_cast<int>(duty_ * 100.0)) +
           "% duty cycle at the conventional MEP point";
  }
  [[nodiscard]] bool fast_path() const override { return true; }

  [[nodiscard]] std::unique_ptr<PolicyController> make_controller(
      const PolicyContext& ctx) const override {
    HEMP_REQUIRE(ctx.model != nullptr, "DutyCyclePolicy: null model");
    // Window rides the job period so each window carries one job's worth of
    // on-time; workload-free runs fall back to a 10 ms window.
    const Seconds window = ctx.workload.job_cycles > 0.0
                               ? ctx.workload.period
                               : Seconds(10e-3);
    return std::make_unique<DutyCycleController>(*ctx.model, duty_, window,
                                                 ctx.workload);
  }

 private:
  std::string name_;
  double duty_;
};

class OraclePolicy final : public EnergyPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "oracle_dp"; }
  [[nodiscard]] std::string description() const override {
    return "clairvoyant DP schedule upper bound (offline scored)";
  }

  [[nodiscard]] std::optional<OfflineScore> offline(
      const PolicyContext& ctx) const override {
    HEMP_REQUIRE(ctx.model != nullptr, "OraclePolicy: null model");
    HEMP_REQUIRE(ctx.trace != nullptr,
                 "OraclePolicy: offline scoring needs the irradiance trace");
    const DpOracle oracle(*ctx.model);
    const DpOracle::Solution sol =
        oracle.solve(*ctx.trace, ctx.day_length, ctx.solar_capacitance,
                     ctx.solar_start_voltage, ctx.workload);
    OfflineScore score;
    score.cycles = sol.cycles;
    score.harvested = sol.harvest_available;
    score.delivered = sol.spent;
    score.jobs_submitted = sol.jobs.submitted;
    score.jobs_completed = sol.jobs.completed;
    score.jobs_missed = sol.jobs.missed;
    score.deadline_hit_rate = sol.deadline_hit_rate;
    score.halted = sol.off_time;
    return score;
  }

  [[nodiscard]] std::unique_ptr<PolicyController> make_controller(
      const PolicyContext& ctx) const override {
    (void)ctx;
    throw ModelError(
        "oracle_dp is offline-only: it scores nodes analytically via "
        "offline() and has no transient controller");
  }
};

}  // namespace

void register_builtin_policies(PolicyRegistry& registry) {
  {
    // Ported legacy max-performance mode — default params, exactly as the
    // pre-policy fleet constructed it.  No fast path, no batch override: the
    // legacy hash contract runs through the reference engine (the batch
    // kernel's own default lane is this policy already).
    EnergyManagerParams params;
    params.mode = ManagerMode::kMaxPerformance;
    registry.add(std::make_unique<ManagedPolicy>(
        "mpp_track",
        "legacy max-performance: MPP-tracking DVFS + bypass + sprints",
        params, BatchPolicySpec{false, true, 0.9, 1.2}, false));
  }
  {
    // Ported legacy min-energy mode.
    EnergyManagerParams params;
    params.mode = ManagerMode::kMinEnergy;
    registry.add(std::make_unique<ManagedPolicy>(
        "mep_hold",
        "legacy min-energy: hold the holistic MEP + bypass + sprints",
        params, BatchPolicySpec{true, true, 0.9, 1.2}, false));
  }
  {
    EnergyManagerParams params;
    params.bypass_enter_ratio = 1.1;
    params.bypass_exit_ratio = 1.5;
    registry.add(std::make_unique<ManagedPolicy>(
        "hyst_eager",
        "mpp_track with an eager bypass window (enter 1.1x, exit 1.5x)",
        params, BatchPolicySpec{false, true, 1.1, 1.5}, true));
  }
  {
    EnergyManagerParams params;
    params.bypass_enter_ratio = 0.5;
    params.bypass_exit_ratio = 0.7;
    registry.add(std::make_unique<ManagedPolicy>(
        "hyst_reluctant",
        "mpp_track with a reluctant bypass window (enter 0.5x, exit 0.7x)",
        params, BatchPolicySpec{false, true, 0.5, 0.7}, true));
  }
  {
    EnergyManagerParams params;
    params.queue_discipline = QueueDiscipline::kEdf;
    registry.add(std::make_unique<ManagedPolicy>(
        "edf_sprint",
        "mpp_track draining the job queue earliest-deadline-first",
        params, std::nullopt, true));
  }
  registry.add(std::make_unique<GreedyMppPolicy>());
  registry.add(std::make_unique<DutyCyclePolicy>("duty25", 0.25));
  registry.add(std::make_unique<DutyCyclePolicy>("duty50", 0.50));
  registry.add(std::make_unique<OraclePolicy>());
}

}  // namespace hemp
