// Microprocessor clock-speed model: frequency as a function of supply voltage.
//
// Two regions, matching measured 65 nm silicon behaviour (paper Fig. 11a):
//   * super/near-threshold: alpha-power law  f = k * (V - Vth)^alpha / V;
//   * subthreshold (below Vth + near_threshold_margin): exponential roll-off
//     f = f(onset) * exp((V - onset) / slope), which is what pushes the
//     conventional minimum-energy point up out of deep subthreshold.
//
// Calibrated so f(1.0 V) ~ 1.2 GHz (Fig. 11a right axis) with a roll-off that
// leaves the conventional MEP near 0.33 V.
#pragma once

#include "common/units.hpp"

namespace hemp {

struct SpeedModelParams {
  /// Threshold voltage of the logic transistors.
  Volts threshold{0.30};
  /// Alpha-power-law velocity-saturation exponent.
  double alpha = 1.05;
  /// Calibration point: frequency reached at `reference_voltage`.
  Volts reference_voltage{1.0};
  Hertz reference_frequency{1.2e9};
  /// Above Vth + margin the alpha-power law holds; below it the exponential
  /// subthreshold branch takes over (continuously).
  Volts near_threshold_margin{0.06};
  /// Subthreshold e-folding slope (V per e-fold of frequency).
  Volts subthreshold_slope{0.05};
  /// Logic stops resolving below this supply.
  Volts min_operating_voltage{0.20};
  /// Maximum rated supply.
  Volts max_operating_voltage{1.2};

  void validate() const;
};

class SpeedModel {
 public:
  explicit SpeedModel(const SpeedModelParams& params = {});

  /// Maximum clock frequency sustainable at supply `v`.
  /// Throws RangeError outside [min, max] operating voltage.
  [[nodiscard]] Hertz max_frequency(Volts v) const;

  /// Smallest supply able to sustain `f` (inverse of max_frequency).
  /// Throws RangeError when `f` exceeds the frequency at max voltage.
  [[nodiscard]] Volts voltage_for_frequency(Hertz f) const;

  [[nodiscard]] Volts min_voltage() const { return params_.min_operating_voltage; }
  [[nodiscard]] Volts max_voltage() const { return params_.max_operating_voltage; }
  [[nodiscard]] const SpeedModelParams& params() const { return params_; }

 private:
  [[nodiscard]] double alpha_law(double v) const;
  [[nodiscard]] Volts subthreshold_onset() const;

  SpeedModelParams params_;
  double gain_ = 0.0;  // k in the alpha-power law, from the calibration point
};

}  // namespace hemp
