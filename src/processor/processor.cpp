#include "processor/processor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace hemp {

Processor::Processor(SpeedModel speed, PowerModel power, std::string name)
    : speed_(std::move(speed)), power_(std::move(power)), name_(std::move(name)) {}

void Processor::check(const OperatingPoint& op) const {
  HEMP_CHECK_RANGE(op.vdd >= speed_.min_voltage() && op.vdd <= speed_.max_voltage(),
                   "Processor: supply outside operating envelope");
  HEMP_CHECK_RANGE(op.frequency.value() >= 0.0, "Processor: negative frequency");
  // Allow a hair of slack for round-tripping through voltage_for_frequency.
  HEMP_CHECK_RANGE(op.frequency.value() <= speed_.max_frequency(op.vdd).value() * (1.0 + 1e-9),
                   "Processor: frequency above what the supply sustains");
}

Watts Processor::power(const OperatingPoint& op) const {
  check(op);
  return power_.total_power(op.vdd, op.frequency);
}

Watts Processor::max_power(Volts vdd) const {
  return power_.total_power(vdd, speed_.max_frequency(vdd));
}

Amps Processor::current(const OperatingPoint& op) const { return power(op) / op.vdd; }

Joules Processor::energy_per_cycle(Volts vdd) const {
  return power_.energy_per_cycle(vdd, speed_.max_frequency(vdd));
}

Joules Processor::energy_per_cycle(const OperatingPoint& op) const {
  check(op);
  HEMP_CHECK_RANGE(op.frequency.value() > 0.0,
                   "Processor: energy per cycle needs a running clock");
  return power_.energy_per_cycle(op.vdd, op.frequency);
}

Seconds Processor::time_for_cycles(double cycles, const OperatingPoint& op) const {
  check(op);
  HEMP_CHECK_RANGE(cycles >= 0.0, "Processor: negative cycle count");
  HEMP_CHECK_RANGE(op.frequency.value() > 0.0, "Processor: zero clock");
  return Seconds(cycles / op.frequency.value());
}

Joules Processor::energy_for_cycles(double cycles, const OperatingPoint& op) const {
  return Joules(energy_per_cycle(op).value() * cycles);
}

Processor Processor::make_test_chip() {
  return Processor(SpeedModel(), PowerModel(), "65nm-image-processor");
}

DvfsLadder::DvfsLadder(const Processor& proc, int steps) {
  HEMP_REQUIRE(steps >= 2, "DvfsLadder: need >= 2 steps");
  const double lo = proc.min_voltage().value();
  const double hi = proc.max_voltage().value();
  levels_.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const Volts v(lo + (hi - lo) * i / (steps - 1));
    levels_.push_back({v, proc.max_frequency(v)});
  }
}

DvfsLadder::DvfsLadder(std::vector<OperatingPoint> levels) : levels_(std::move(levels)) {
  HEMP_REQUIRE(levels_.size() >= 2, "DvfsLadder: need >= 2 levels");
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    HEMP_REQUIRE(levels_[i - 1].vdd < levels_[i].vdd,
                 "DvfsLadder: levels must be sorted by voltage");
  }
}

OperatingPoint DvfsLadder::floor_level(Volts v) const {
  HEMP_CHECK_RANGE(v >= levels_.front().vdd, "DvfsLadder: below the lowest level");
  OperatingPoint out = levels_.front();
  for (const auto& l : levels_) {
    if (l.vdd <= v) out = l;
  }
  return out;
}

OperatingPoint DvfsLadder::ceil_level_for_frequency(Hertz f) const {
  for (const auto& l : levels_) {
    if (l.frequency >= f) return l;
  }
  throw RangeError("DvfsLadder: frequency above the highest level");
}

std::size_t DvfsLadder::nearest_index(Volts v) const {
  std::size_t best = 0;
  double best_d = std::fabs(levels_[0].vdd.value() - v.value());
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    const double d = std::fabs(levels_[i].vdd.value() - v.value());
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

const OperatingPoint& DvfsLadder::at(std::size_t i) const {
  HEMP_CHECK_RANGE(i < levels_.size(), "DvfsLadder: index out of range");
  return levels_[i];
}

}  // namespace hemp
