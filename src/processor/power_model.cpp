#include "processor/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hemp {

void PowerModelParams::validate() const {
  HEMP_REQUIRE(effective_capacitance.value() > 0.0,
               "PowerModel: effective capacitance must be positive");
  HEMP_REQUIRE(leakage_base.value() >= 0.0,
               "PowerModel: leakage base must be non-negative");
  HEMP_REQUIRE(dibl_voltage.value() > 0.0, "PowerModel: DIBL voltage must be positive");
}

PowerModel::PowerModel(const PowerModelParams& params) : params_(params) {
  params_.validate();
}

Watts PowerModel::dynamic_power(Volts vdd, Hertz f) const {
  // Total function: a collapsed (<= 0 V) rail or a stopped clock draws
  // nothing, so the leaf clamps to the physical domain instead of throwing —
  // it is reachable from every HEMP_HOT stepped loop (hot-path purity).
  const double v = std::max(vdd.value(), 0.0);
  const double hz = std::max(f.value(), 0.0);
  return Watts(params_.effective_capacitance.value() * v * v * hz);
}

Watts PowerModel::leakage_power(Volts vdd) const {
  // Total function: no rail, no leakage (see dynamic_power).
  const double v = std::max(vdd.value(), 0.0);
  return Watts(v * params_.leakage_base.value() *
               std::exp(v / params_.dibl_voltage.value()));
}

Watts PowerModel::total_power(Volts vdd, Hertz f) const {
  return dynamic_power(vdd, f) + leakage_power(vdd);
}

Joules PowerModel::dynamic_energy_per_cycle(Volts vdd) const {
  const double v = vdd.value();
  return Joules(params_.effective_capacitance.value() * v * v);
}

Joules PowerModel::leakage_energy_per_cycle(Volts vdd, Hertz f) const {
  HEMP_CHECK_RANGE(f.value() > 0.0, "PowerModel: leakage per cycle needs f > 0");
  return leakage_power(vdd) * Seconds(1.0 / f.value());
}

Joules PowerModel::energy_per_cycle(Volts vdd, Hertz f) const {
  return dynamic_energy_per_cycle(vdd) + leakage_energy_per_cycle(vdd, f);
}

}  // namespace hemp
