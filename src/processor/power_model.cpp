#include "processor/power_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hemp {

void PowerModelParams::validate() const {
  HEMP_REQUIRE(effective_capacitance.value() > 0.0,
               "PowerModel: effective capacitance must be positive");
  HEMP_REQUIRE(leakage_base.value() >= 0.0,
               "PowerModel: leakage base must be non-negative");
  HEMP_REQUIRE(dibl_voltage.value() > 0.0, "PowerModel: DIBL voltage must be positive");
}

PowerModel::PowerModel(const PowerModelParams& params) : params_(params) {
  params_.validate();
}

Watts PowerModel::dynamic_power(Volts vdd, Hertz f) const {
  HEMP_CHECK_RANGE(vdd.value() >= 0.0, "PowerModel: negative supply");
  HEMP_CHECK_RANGE(f.value() >= 0.0, "PowerModel: negative frequency");
  const double v = vdd.value();
  return Watts(params_.effective_capacitance.value() * v * v * f.value());
}

Watts PowerModel::leakage_power(Volts vdd) const {
  HEMP_CHECK_RANGE(vdd.value() >= 0.0, "PowerModel: negative supply");
  const double v = vdd.value();
  return Watts(v * params_.leakage_base.value() *
               std::exp(v / params_.dibl_voltage.value()));
}

Watts PowerModel::total_power(Volts vdd, Hertz f) const {
  return dynamic_power(vdd, f) + leakage_power(vdd);
}

Joules PowerModel::dynamic_energy_per_cycle(Volts vdd) const {
  const double v = vdd.value();
  return Joules(params_.effective_capacitance.value() * v * v);
}

Joules PowerModel::leakage_energy_per_cycle(Volts vdd, Hertz f) const {
  HEMP_CHECK_RANGE(f.value() > 0.0, "PowerModel: leakage per cycle needs f > 0");
  return leakage_power(vdd) * Seconds(1.0 / f.value());
}

Joules PowerModel::energy_per_cycle(Volts vdd, Hertz f) const {
  return dynamic_energy_per_cycle(vdd) + leakage_energy_per_cycle(vdd, f);
}

}  // namespace hemp
