// Microprocessor facade: speed + power models plus operating-point helpers.
//
// Represents the paper's test vehicle, the 65 nm pattern-recognition image
// processor (Sec. VII), as the load the holistic optimizer schedules.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "processor/power_model.hpp"
#include "processor/speed_model.hpp"

namespace hemp {

/// One (Vdd, f) pair; f may be below the max frequency at Vdd (throttled).
struct OperatingPoint {
  Volts vdd;
  Hertz frequency;
};

class Processor {
 public:
  Processor(SpeedModel speed, PowerModel power, std::string name = "uProcessor");

  [[nodiscard]] const SpeedModel& speed() const { return speed_; }
  [[nodiscard]] const PowerModel& power_model() const { return power_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] Hertz max_frequency(Volts vdd) const { return speed_.max_frequency(vdd); }
  [[nodiscard]] Volts min_voltage() const { return speed_.min_voltage(); }
  [[nodiscard]] Volts max_voltage() const { return speed_.max_voltage(); }

  /// Power drawn at an operating point; f must not exceed max_frequency(vdd).
  [[nodiscard]] Watts power(const OperatingPoint& op) const;
  /// Power at `vdd` running at maximum frequency (the Fig. 6a load line).
  [[nodiscard]] Watts max_power(Volts vdd) const;
  /// Load current drawn from the rail at an operating point.
  [[nodiscard]] Amps current(const OperatingPoint& op) const;

  /// Energy per cycle at `vdd` clocked at the max frequency (Fig. 7b x-axis).
  [[nodiscard]] Joules energy_per_cycle(Volts vdd) const;
  /// Energy per cycle at an arbitrary (possibly throttled) point.
  [[nodiscard]] Joules energy_per_cycle(const OperatingPoint& op) const;

  /// Validate that `op` is electrically reachable; throws RangeError.
  void check(const OperatingPoint& op) const;

  /// Time and energy to retire `cycles` at an operating point.
  [[nodiscard]] Seconds time_for_cycles(double cycles, const OperatingPoint& op) const;
  [[nodiscard]] Joules energy_for_cycles(double cycles, const OperatingPoint& op) const;

  /// The paper's 65 nm image-processor test chip.
  static Processor make_test_chip();

 private:
  SpeedModel speed_;
  PowerModel power_;
  std::string name_;
};

/// Discrete DVFS ladder: the fully integrated system tunes (Vdd, f) in steps
/// driven by the clock generator + regulator reference (paper Sec. VI-A).
class DvfsLadder {
 public:
  /// Build `steps` evenly spaced voltage levels across the processor's
  /// operating envelope, each paired with its max frequency.
  DvfsLadder(const Processor& proc, int steps);

  /// Explicit levels (must be sorted by voltage ascending).
  explicit DvfsLadder(std::vector<OperatingPoint> levels);

  [[nodiscard]] const std::vector<OperatingPoint>& levels() const { return levels_; }
  [[nodiscard]] std::size_t size() const { return levels_.size(); }

  /// Highest level whose voltage is <= `v` (throws if below the lowest level).
  [[nodiscard]] OperatingPoint floor_level(Volts v) const;
  /// Lowest level able to sustain `f` (throws if above the highest level).
  [[nodiscard]] OperatingPoint ceil_level_for_frequency(Hertz f) const;
  /// Index of the level closest in voltage to `v`.
  [[nodiscard]] std::size_t nearest_index(Volts v) const;
  [[nodiscard]] const OperatingPoint& at(std::size_t i) const;

 private:
  std::vector<OperatingPoint> levels_;
};

}  // namespace hemp
