#include "processor/corners.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hemp {

std::string to_string(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::kSlowSlow: return "SS";
    case ProcessCorner::kTypical: return "TT";
    case ProcessCorner::kFastFast: return "FF";
  }
  throw ModelError("to_string: unknown process corner");
}

void OperatingConditions::validate() const {
  HEMP_REQUIRE(temperature_c >= -55.0 && temperature_c <= 150.0,
               "OperatingConditions: temperature outside silicon range");
}

Processor make_test_chip_at(const OperatingConditions& conditions) {
  conditions.validate();

  SpeedModelParams speed;  // typical-corner defaults
  PowerModelParams power;

  double vth_shift = 0.0;
  double drive_scale = 1.0;
  double leak_scale = 1.0;
  switch (conditions.corner) {
    case ProcessCorner::kSlowSlow:
      vth_shift = +0.04;
      drive_scale = 0.85;
      leak_scale = 0.4;
      break;
    case ProcessCorner::kTypical:
      break;
    case ProcessCorner::kFastFast:
      vth_shift = -0.04;
      drive_scale = 1.15;
      leak_scale = 2.5;
      break;
  }

  const double dt = conditions.temperature_c - 25.0;
  vth_shift -= 1e-3 * dt;                    // Vth drops ~1 mV/K
  leak_scale *= std::exp2(dt / 30.0);        // leakage doubles every 30 K

  speed.threshold = Volts(speed.threshold.value() + vth_shift);
  speed.reference_frequency =
      Hertz(speed.reference_frequency.value() * drive_scale);
  power.leakage_base = Amps(power.leakage_base.value() * leak_scale);

  const std::string name = "65nm-image-processor-" + to_string(conditions.corner) +
                           "-" + std::to_string(static_cast<int>(conditions.temperature_c)) +
                           "C";
  return Processor(SpeedModel(speed), PowerModel(power), name);
}

}  // namespace hemp
