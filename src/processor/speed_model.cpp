#include "processor/speed_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/numeric.hpp"

namespace hemp {

void SpeedModelParams::validate() const {
  HEMP_REQUIRE(threshold.value() > 0.0, "SpeedModel: threshold must be positive");
  HEMP_REQUIRE(alpha >= 1.0 && alpha <= 2.0, "SpeedModel: alpha out of range [1, 2]");
  HEMP_REQUIRE(reference_voltage > threshold,
               "SpeedModel: reference voltage must exceed threshold");
  HEMP_REQUIRE(reference_frequency.value() > 0.0,
               "SpeedModel: reference frequency must be positive");
  HEMP_REQUIRE(near_threshold_margin.value() > 0.0,
               "SpeedModel: near-threshold margin must be positive");
  HEMP_REQUIRE(subthreshold_slope.value() > 0.0,
               "SpeedModel: subthreshold slope must be positive");
  HEMP_REQUIRE(min_operating_voltage.value() > 0.0 &&
                   min_operating_voltage < max_operating_voltage,
               "SpeedModel: invalid operating voltage envelope");
  HEMP_REQUIRE(max_operating_voltage >= reference_voltage,
               "SpeedModel: reference voltage above max operating voltage");
}

SpeedModel::SpeedModel(const SpeedModelParams& params) : params_(params) {
  params_.validate();
  const double v = params_.reference_voltage.value();
  const double vth = params_.threshold.value();
  gain_ = params_.reference_frequency.value() * v / std::pow(v - vth, params_.alpha);
}

double SpeedModel::alpha_law(double v) const {
  const double vth = params_.threshold.value();
  return gain_ * std::pow(v - vth, params_.alpha) / v;
}

Volts SpeedModel::subthreshold_onset() const {
  return params_.threshold + params_.near_threshold_margin;
}

Hertz SpeedModel::max_frequency(Volts v) const {
  // Tolerate float round-off at the envelope edges (grid sweeps land there).
  constexpr double kEdgeTol = 1e-9;
  if (v.value() > params_.max_operating_voltage.value() &&
      v.value() <= params_.max_operating_voltage.value() + kEdgeTol) {
    v = params_.max_operating_voltage;
  }
  if (v.value() < params_.min_operating_voltage.value() &&
      v.value() >= params_.min_operating_voltage.value() - kEdgeTol) {
    v = params_.min_operating_voltage;
  }
  HEMP_CHECK_RANGE(v >= params_.min_operating_voltage && v <= params_.max_operating_voltage,
                   "SpeedModel: supply outside operating envelope");
  const Volts onset = subthreshold_onset();
  if (v >= onset) return Hertz(alpha_law(v.value()));
  const double f_onset = alpha_law(onset.value());
  const double decades = (v - onset).value() / params_.subthreshold_slope.value();
  return Hertz(f_onset * std::exp(decades));
}

Volts SpeedModel::voltage_for_frequency(Hertz f) const {
  HEMP_CHECK_RANGE(f.value() > 0.0, "SpeedModel: non-positive frequency");
  const Hertz f_max = max_frequency(params_.max_operating_voltage);
  HEMP_CHECK_RANGE(f <= f_max, "SpeedModel: frequency above what max voltage sustains");
  const Hertz f_min = max_frequency(params_.min_operating_voltage);
  if (f <= f_min) return params_.min_operating_voltage;
  auto g = [&](double v) { return max_frequency(Volts(v)).value() - f.value(); };
  return Volts(numeric::brent_root(g, params_.min_operating_voltage.value(),
                                   params_.max_operating_voltage.value(),
                                   {.x_tol = 1e-9}));
}

}  // namespace hemp
