// Microprocessor power and energy model.
//
//   P_dyn  = Ceff * Vdd^2 * f                         (switched capacitance)
//   P_leak = Vdd * I_leak0 * exp(Vdd / V_dibl)        (subthreshold + DIBL)
//   E/cycle = Ceff * Vdd^2 + P_leak / f               (paper Eq. 5 operands)
//
// The leakage term is what creates a minimum-energy point: dynamic energy
// falls quadratically with Vdd while leakage energy per cycle explodes as the
// clock slows.  Calibrated against the paper's Fig. 11a shape (conventional
// MEP near 0.33 V for the 65 nm image processor).
#pragma once

#include "common/units.hpp"
#include "processor/speed_model.hpp"

namespace hemp {

struct PowerModelParams {
  /// Effective switched capacitance per cycle (activity-weighted).
  Farads effective_capacitance{45e-12};
  /// Leakage current prefactor at Vdd -> 0.
  Amps leakage_base{0.38e-3};
  /// DIBL/stack voltage scale for leakage growth with Vdd.
  Volts dibl_voltage{0.4};

  void validate() const;
};

class PowerModel {
 public:
  explicit PowerModel(const PowerModelParams& params = {});

  [[nodiscard]] Watts dynamic_power(Volts vdd, Hertz f) const;
  [[nodiscard]] Watts leakage_power(Volts vdd) const;
  [[nodiscard]] Watts total_power(Volts vdd, Hertz f) const;

  /// Dynamic energy of one clock cycle at `vdd` (frequency-independent).
  [[nodiscard]] Joules dynamic_energy_per_cycle(Volts vdd) const;
  /// Leakage energy charged to one cycle when clocking at `f`.
  [[nodiscard]] Joules leakage_energy_per_cycle(Volts vdd, Hertz f) const;
  /// Total energy per cycle at `vdd` clocked at `f`.
  [[nodiscard]] Joules energy_per_cycle(Volts vdd, Hertz f) const;

  [[nodiscard]] const PowerModelParams& params() const { return params_; }

 private:
  PowerModelParams params_;
};

}  // namespace hemp
