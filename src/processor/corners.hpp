// Process corners and temperature scaling for the 65 nm test chip.
//
// The paper evaluates one fabricated die at room temperature; a reproduction
// can ask how the holistic conclusions move across fab corners (SS/TT/FF) and
// temperature — leakage and threshold voltage shift both the conventional and
// the holistic minimum-energy points, and the speed change moves the optimal
// performance point.
#pragma once

#include <string>

#include "processor/processor.hpp"

namespace hemp {

enum class ProcessCorner {
  kSlowSlow,  ///< high Vth, weak drive, low leakage
  kTypical,
  kFastFast,  ///< low Vth, strong drive, high leakage
};

std::string to_string(ProcessCorner corner);

struct OperatingConditions {
  ProcessCorner corner = ProcessCorner::kTypical;
  /// Junction temperature in degrees Celsius.
  double temperature_c = 25.0;

  void validate() const;
};

/// The Sec. VII test chip skewed to a fab corner and temperature.
///
/// Corner model (typical 65 nm spreads):
///   SS: Vth +40 mV, drive gain x0.85, leakage x0.4
///   FF: Vth -40 mV, drive gain x1.15, leakage x2.5
/// Temperature model: Vth -1 mV/K above 25 C (faster but leakier),
/// subthreshold leakage doubles every 30 K.
Processor make_test_chip_at(const OperatingConditions& conditions);

}  // namespace hemp
