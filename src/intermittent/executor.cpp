#include "intermittent/executor.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace hemp {

std::string to_string(IntermittentStrategy s) {
  switch (s) {
    case IntermittentStrategy::kRestart: return "restart";
    case IntermittentStrategy::kTaskAtomic: return "task-atomic";
    case IntermittentStrategy::kCheckpoint: return "checkpoint";
  }
  throw ModelError("to_string: unknown intermittent strategy");
}

void IntermittentExecutorParams::validate() const {
  HEMP_REQUIRE(op.vdd.value() > 0.0 && op.frequency.value() > 0.0,
               "IntermittentExecutor: bad operating point");
  HEMP_REQUIRE(checkpoint_threshold.value() > 0.0,
               "IntermittentExecutor: bad checkpoint threshold");
  HEMP_REQUIRE(checkpoint_cycles >= 0.0 && restore_cycles >= 0.0,
               "IntermittentExecutor: negative overhead cycles");
  HEMP_REQUIRE(reboot_voltage > checkpoint_threshold,
               "IntermittentExecutor: reboot voltage must exceed the checkpoint threshold");
}

IntermittentExecutor::IntermittentExecutor(TaskProgram program,
                                           const IntermittentExecutorParams& params)
    : program_(std::move(program)), params_(params) {
  params_.validate();
}

void IntermittentExecutor::on_start(const SocState& state, SocCommand& cmd) {
  (void)state;
  cmd.path = params_.path;
  cmd.vdd_target = params_.op.vdd;
  cmd.frequency = params_.op.frequency;
  cmd.run = true;
}

void IntermittentExecutor::power_failure() {
  ++stats_.power_failures;
  const double progress = program_.cycles_before(task_index_) + task_progress_;
  switch (params_.strategy) {
    case IntermittentStrategy::kRestart:
      stats_.wasted_cycles += progress;
      task_index_ = 0;
      task_progress_ = 0.0;
      break;
    case IntermittentStrategy::kTaskAtomic:
      // Completed tasks are committed; only the in-flight task re-executes.
      stats_.wasted_cycles += task_progress_;
      task_progress_ = 0.0;
      break;
    case IntermittentStrategy::kCheckpoint:
      if (checkpoint_) {
        const double kept =
            program_.cycles_before(checkpoint_->first) + checkpoint_->second;
        stats_.wasted_cycles += std::max(progress - kept, 0.0);
        task_index_ = checkpoint_->first;
        task_progress_ = checkpoint_->second;
        phase_ = Phase::kRestoring;
        overhead_progress_ = 0.0;
      } else {
        stats_.wasted_cycles += progress;
        task_index_ = 0;
        task_progress_ = 0.0;
        phase_ = Phase::kRunning;
      }
      break;
  }
  if (params_.strategy != IntermittentStrategy::kCheckpoint) {
    phase_ = Phase::kRunning;
  }
  overhead_progress_ = 0.0;
}

void IntermittentExecutor::on_tick(const SocState& state, SocCommand& cmd) {
  const double delta = state.cycles_retired - last_total_cycles_;
  last_total_cycles_ = state.cycles_retired;

  // --- Apply retired cycles to the active phase. ------------------------------
  if (delta > 0.0) {
    switch (phase_) {
      case Phase::kRunning: {
        double remaining = delta;
        while (remaining > 0.0) {
          const Task& task = program_.tasks()[task_index_];
          const double need = task.cycles - task_progress_;
          if (remaining < need) {
            task_progress_ += remaining;
            remaining = 0.0;
          } else {
            remaining -= need;
            task_progress_ = 0.0;
            ++task_index_;
            if (task_index_ == program_.size()) {
              ++stats_.programs_completed;
              stats_.useful_cycles += program_.total_cycles();
              task_index_ = 0;
              // Invalidate the old checkpoint: it refers to finished work.
              checkpoint_.reset();
            }
          }
        }
        break;
      }
      case Phase::kSavingCheckpoint:
        overhead_progress_ += delta;
        if (overhead_progress_ >= params_.checkpoint_cycles) {
          checkpoint_ = {task_index_, task_progress_};
          ++stats_.checkpoints_written;
          stats_.wasted_cycles += params_.checkpoint_cycles;
          overhead_progress_ = 0.0;
          // Hibernus-style: sleep after saving and wait out the brownout.
          phase_ = Phase::kRunning;
          cmd.run = false;
        }
        break;
      case Phase::kRestoring:
        overhead_progress_ += delta;
        if (overhead_progress_ >= params_.restore_cycles) {
          ++stats_.restores;
          stats_.wasted_cycles += params_.restore_cycles;
          overhead_progress_ = 0.0;
          phase_ = Phase::kRunning;
        }
        break;
      case Phase::kDead:
        break;
    }
  }

  // --- Power-failure detection. -----------------------------------------------
  if (was_running_ && !state.processor_running && cmd.run) {
    power_failure();
    cmd.run = false;  // stay down until the rail genuinely recovers
  }
  was_running_ = state.processor_running;

  // --- Reboot once the rail recovers. -----------------------------------------
  if (!cmd.run && state.v_dd >= params_.reboot_voltage) {
    cmd.run = true;
  }

  // --- Checkpoint trigger (low-voltage comparator on the rail). ---------------
  if (params_.strategy == IntermittentStrategy::kCheckpoint &&
      phase_ == Phase::kRunning && cmd.run && state.processor_running &&
      state.v_dd < params_.checkpoint_threshold &&
      state.v_dd >= Volts(0.0)) {
    // Save only if we have no fresh checkpoint of this exact position.
    if (!checkpoint_ || checkpoint_->first != task_index_ ||
        checkpoint_->second != task_progress_) {
      phase_ = Phase::kSavingCheckpoint;
      overhead_progress_ = 0.0;
    }
  }
}

}  // namespace hemp
