// Task-structured programs for intermittent execution.
//
// The paper's introduction situates its scheduling against the intermittent-
// computing line of work: checkpointing systems (Hibernus++ [14]) and
// task-based runtimes (Alpaca [16]) preserve forward progress through the
// power failures that a battery-less supply inflicts.  This module provides
// the program abstraction those strategies execute over: a linear sequence
// of atomic tasks with known cycle costs.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace hemp {

struct Task {
  std::string name;
  double cycles = 0.0;
};

class TaskProgram {
 public:
  explicit TaskProgram(std::vector<Task> tasks);

  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] double total_cycles() const { return total_cycles_; }
  /// Cycles of tasks [0, index) — the progress represented by having
  /// completed `index` tasks.
  [[nodiscard]] double cycles_before(std::size_t index) const;

  /// The paper's recognition workload split into its pipeline stages
  /// (scan-in, gradients, features, classify), sized for a WxH frame.
  static TaskProgram recognition_frame(int width = 64, int height = 64);

 private:
  std::vector<Task> tasks_;
  double total_cycles_ = 0.0;
};

}  // namespace hemp
