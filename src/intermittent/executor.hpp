// Intermittent execution strategies over the transient SoC.
//
// Three ways to survive power failures (paper Sec. I, refs [14-16]):
//   * kRestart   — no persistence: a brownout restarts the program.
//   * kTaskAtomic — Alpaca-style: completed tasks persist (their outputs are
//     committed to non-volatile state); a brownout loses only the task in
//     flight.
//   * kCheckpoint — Hibernus-style: a low-voltage comparator triggers a
//     volatile-state checkpoint to NVM before the rail dies; restore resumes
//     mid-task at checkpoint granularity.
//
// The executor is a SocController: it runs the program at a fixed operating
// point through whatever supply the simulator provides and keeps survival
// statistics.  The paper's own answer — scheduling so failures don't happen
// at all — is the EnergyManager; benches compare the two worlds.
#pragma once

#include <optional>

#include "intermittent/program.hpp"
#include "processor/processor.hpp"
#include "sim/soc_system.hpp"

namespace hemp {

enum class IntermittentStrategy { kRestart, kTaskAtomic, kCheckpoint };

std::string to_string(IntermittentStrategy s);

struct IntermittentExecutorParams {
  IntermittentStrategy strategy = IntermittentStrategy::kTaskAtomic;
  /// Operating point the program runs at.
  OperatingPoint op{Volts(0.5), Hertz(500e6)};
  /// Power path (regulated by default; bypass for PVS-style setups).
  PowerPath path = PowerPath::kRegulated;
  /// Rail voltage below which the checkpoint strategy saves state (must sit
  /// above the processor's minimum operating voltage to leave save energy).
  Volts checkpoint_threshold{0.34};
  /// Cost of writing a checkpoint / restoring one (NVM traffic).
  double checkpoint_cycles = 40e3;
  double restore_cycles = 25e3;
  /// Rail voltage at which a powered-down node restarts.
  Volts reboot_voltage{0.45};

  void validate() const;
};

class IntermittentExecutor : public SocController {
 public:
  IntermittentExecutor(TaskProgram program, const IntermittentExecutorParams& params);

  void on_start(const SocState& state, SocCommand& cmd) override;
  void on_tick(const SocState& state, SocCommand& cmd) override;

  struct Stats {
    int programs_completed = 0;
    int power_failures = 0;
    int checkpoints_written = 0;
    int restores = 0;
    double useful_cycles = 0.0;  ///< cycles that contributed to final progress
    double wasted_cycles = 0.0;  ///< re-executed or lost to failures
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t current_task() const { return task_index_; }

 private:
  void power_failure();

  TaskProgram program_;
  IntermittentExecutorParams params_;

  enum class Phase { kRunning, kSavingCheckpoint, kRestoring, kDead };
  Phase phase_ = Phase::kRunning;

  std::size_t task_index_ = 0;      ///< next task to complete
  double task_progress_ = 0.0;      ///< cycles into the current task
  double overhead_progress_ = 0.0;  ///< cycles into a save/restore
  /// Checkpointed state: (task index, cycles into that task).
  std::optional<std::pair<std::size_t, double>> checkpoint_;
  bool was_running_ = false;
  double last_total_cycles_ = 0.0;
  Stats stats_;
};

}  // namespace hemp
