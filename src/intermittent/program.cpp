#include "intermittent/program.hpp"

#include <utility>

#include "common/error.hpp"
#include "imgproc/pipeline.hpp"

namespace hemp {

TaskProgram::TaskProgram(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  HEMP_REQUIRE(!tasks_.empty(), "TaskProgram: need at least one task");
  for (const Task& t : tasks_) {
    HEMP_REQUIRE(t.cycles > 0.0, "TaskProgram: task cycles must be positive");
    total_cycles_ += t.cycles;
  }
}

double TaskProgram::cycles_before(std::size_t index) const {
  HEMP_CHECK_RANGE(index <= tasks_.size(), "TaskProgram: index out of range");
  double sum = 0.0;
  for (std::size_t i = 0; i < index; ++i) sum += tasks_[i].cycles;
  return sum;
}

TaskProgram TaskProgram::recognition_frame(int width, int height) {
  // Apportion the calibrated frame cost across the pipeline stages with the
  // rough split the cycle model produces (scan-in heavy, features next).
  const double total =
      RecognitionPipeline::make_test_chip_pipeline().frame_cycles(width, height);
  return TaskProgram({
      {"scan_in", total * 0.34},
      {"gradients", total * 0.38},
      {"cell_histograms", total * 0.14},
      {"window_features", total * 0.12},
      {"classify", total * 0.02},
  });
}

}  // namespace hemp
